package net

import (
	"errors"
	gonet "net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Transport edge paths: misbehaving peers during establishment and the
// liveness detector's two failure modes. Every test pins the same three
// properties — bounded time, typed error, no leaked goroutines.

// newMeshTuned is newMesh with a hook to configure each transport (faults,
// heartbeat, liveness) before Establish.
func newMeshTuned(t *testing.T, k int, tune func(id int, tr *Transport)) []*Transport {
	t.Helper()
	lns := make([]gonet.Listener, k)
	addrs := make([]string, k)
	for i := range lns {
		ln, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fp := Fingerprint{Procs: k, N: 8, HalfEdges: 14}
	trs := make([]*Transport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trs[i] = NewTransport(lns[i], i, addrs, fp)
			if tune != nil {
				tune(i, trs[i])
			}
			errs[i] = trs[i].Establish(10 * time.Second)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("establishing process %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

// acceptVictim builds process 0 of a 2-process cluster: it dials nobody and
// must accept exactly one hello, so a misbehaving inbound connection is the
// only thing between it and a completed mesh.
func acceptVictim(t *testing.T) (*Transport, string) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String(), "127.0.0.1:9"}
	return NewTransport(ln, 0, addrs, Fingerprint{Procs: 2, N: 8, HalfEdges: 14}), addrs[0]
}

// TestEstablishHalfOpenPeer connects a peer that never says hello: the
// handshake must fail typed at the deadline instead of wedging the accept
// loop forever.
func TestEstablishHalfOpenPeer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	tr, addr := acceptVictim(t)
	conn, err := gonet.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	err = tr.Establish(500 * time.Millisecond)
	tr.Close()
	var he *HandshakeError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *HandshakeError", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("establish took %v against a silent peer", d)
	}
	checkNoLeaks(t, baseline)
}

// TestEstablishTimeoutMidFrame stalls the handshake inside a frame: the
// header promises a payload that never finishes arriving.
func TestEstablishTimeoutMidFrame(t *testing.T) {
	baseline := runtime.NumGoroutine()
	tr, addr := acceptVictim(t)
	conn, err := gonet.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 64-byte hello frame announced, 3 bytes delivered, then silence.
	if _, err := conn.Write([]byte{64, 0, 0, 0, frameHello, 1, 2}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = tr.Establish(500 * time.Millisecond)
	tr.Close()
	var he *HandshakeError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *HandshakeError", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("establish took %v against a stalled frame", d)
	}
	checkNoLeaks(t, baseline)
}

// TestEstablishDuplicatePeerID sends two hellos claiming the same process
// id: the second registration must be rejected as a typed handshake
// failure — identities are single-use per mesh.
func TestEstablishDuplicatePeerID(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String(), "127.0.0.1:9", "127.0.0.1:10"}
	fp := Fingerprint{Procs: 3, N: 8, HalfEdges: 14}
	tr := NewTransport(ln, 0, addrs, fp)
	estErr := make(chan error, 1)
	go func() { estErr <- tr.Establish(5 * time.Second) }()
	table := CanonicalTable()
	for i := 0; i < 2; i++ {
		conn, err := gonet.Dial("tcp", addrs[0])
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := writeFrame(conn, frameHello, appendHello(nil, 1, fp, table)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-estErr:
		var he *HandshakeError
		if !errors.As(err, &he) {
			t.Fatalf("got %v, want *HandshakeError for the duplicate identity", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("establish hung on the duplicate identity")
	}
	tr.Close()
	checkNoLeaks(t, baseline)
}

// TestDialRetryAfterRefusals arms injected dial refusals on the dialing
// side: the backoff-retry loop must absorb them and still complete the
// mesh well inside the deadline.
func TestDialRetryAfterRefusals(t *testing.T) {
	baseline := runtime.NumGoroutine()
	trs := newMeshTuned(t, 2, func(id int, tr *Transport) {
		if id == 1 { // the higher id dials
			tr.Faults = &FaultPlan{RefuseDials: 2}
		}
	})
	if err := trs[1].Send(0, frameRound, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := trs[1].FlushAll(); err != nil {
		t.Fatal(err)
	}
	typ, body, err := trs[0].Recv(1)
	if err != nil || typ != frameRound || len(body) != 1 || body[0] != 9 {
		t.Fatalf("frame after refused dials: type %d body %v err %v", typ, body, err)
	}
	trs[0].Close()
	trs[1].Close()
	checkNoLeaks(t, baseline)
}

// TestEstablishDeadlineAcrossDialRetries points the dialer at a dead
// address: the retry loop must charge every attempt and every backoff to
// one overall deadline and give up on time.
func TestEstablishDeadlineAcrossDialRetries(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Port 1 on loopback: connections are refused, every attempt fails fast,
	// so only the deadline can stop the retry loop.
	addrs := []string{"127.0.0.1:1", ln.Addr().String()}
	tr := NewTransport(ln, 1, addrs, Fingerprint{Procs: 2, N: 8, HalfEdges: 14})
	start := time.Now()
	err = tr.Establish(400 * time.Millisecond)
	elapsed := time.Since(start)
	tr.Close()
	if err == nil {
		t.Fatal("established a mesh against a dead peer")
	}
	if !strings.Contains(err.Error(), "dialing process 0") {
		t.Fatalf("error does not name the dial phase: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dial retries overshot the 400ms deadline by far: %v", elapsed)
	}
	checkNoLeaks(t, baseline)
}

// TestLivenessSilentPeer: with liveness armed and no heartbeats coming
// back, a blocked Recv must convert total silence into a typed
// *PeerDownError at the window instead of hanging.
func TestLivenessSilentPeer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	trs := newMeshTuned(t, 2, func(id int, tr *Transport) {
		if id == 0 {
			tr.Liveness = 300 * time.Millisecond
		}
	})
	start := time.Now()
	_, _, err := trs[0].Recv(1)
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("got %v, want *PeerDownError for peer 1", err)
	}
	if d := time.Since(start); d < 200*time.Millisecond || d > 5*time.Second {
		t.Fatalf("silence detected after %v, want ≈300ms", d)
	}
	trs[0].Close()
	trs[1].Close()
	checkNoLeaks(t, baseline)
}

// TestLivenessLostFrameClaims: the peer is alive and heartbeating but its
// data frames are being lost (injected 100% drop — the sender still counts
// them). The claim carried by the heartbeats exceeds what arrived, so the
// starved Recv must report the peer down with the claim evidence — the
// detector's answer to a live link that eats frames.
func TestLivenessLostFrameClaims(t *testing.T) {
	baseline := runtime.NumGoroutine()
	trs := newMeshTuned(t, 2, func(id int, tr *Transport) {
		switch id {
		case 0:
			tr.Liveness = 400 * time.Millisecond
		case 1:
			tr.Heartbeat = 25 * time.Millisecond
			tr.Faults = &FaultPlan{Drop: 1}
		}
	})
	if err := trs[1].Send(0, frameRound, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := trs[1].FlushAll(); err != nil {
		t.Fatal(err)
	}
	_, _, err := trs[0].Recv(1)
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.Peer != 1 {
		t.Fatalf("got %v, want *PeerDownError for peer 1", err)
	}
	if !strings.Contains(err.Error(), "claims") {
		t.Fatalf("detector fired on the wrong evidence: %v", err)
	}
	trs[0].Close()
	trs[1].Close()
	checkNoLeaks(t, baseline)
}
