package net

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Deterministic fault injection (DESIGN.md §11). A FaultPlan is a pure
// function of its Seed: every per-frame decision hashes (seed, sender,
// receiver, frame index) through splitmix64, so two runs with the same
// plan inject exactly the same faults regardless of scheduling. Plans are
// off by default (nil on the Transport) and the injection hooks sit behind
// a single nil check on the send path, so the benched wire paths pay
// nothing.
//
// Hello and heartbeat frames are exempt: the plan models a lossy network
// under an established mesh, and the liveness machinery must stay
// observable for the detector tests to mean anything. Frame indices count
// from 1 per directed peer pair.

// FaultPlan is a seeded schedule of injected transport faults.
type FaultPlan struct {
	// Seed drives every probabilistic decision.
	Seed uint64

	// Per-frame probabilities, cumulative order drop → dup → trunc → delay.
	Drop  float64 // frame silently not written (sender still claims it)
	Dup   float64 // frame written twice
	Trunc float64 // frame cut mid-payload and the connection killed
	Delay float64 // frame written after a short deterministic stall

	// DelayMax bounds an injected stall (default 5ms when Delay > 0).
	DelayMax time.Duration

	// Kill severs the KillFrom→KillTo connection at data frame KillAt
	// (1-based; 0 disarms).
	KillFrom, KillTo int
	KillAt           int64

	// RefuseDials fails this side's first RefuseDials dial attempts per
	// peer before letting TCP through, exercising the retry/backoff path.
	RefuseDials int

	// Crash makes process CrashProc abandon the run at barrier CrashRound
	// (0 disarms) of engine run CrashRun (the pipeline's improvement run is
	// 2; 0 means any run), returning *InjectedCrashError. The distributed
	// engine honours it; the transport only carries it.
	CrashProc  int
	CrashRound int64
	CrashRun   int64
}

type faultAction int

const (
	faultNone faultAction = iota
	faultDrop
	faultDup
	faultTrunc
	faultDelay
	faultKill
)

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash mixes one directed frame's coordinates with the seed.
func (f *FaultPlan) hash(from, to int, n int64) uint64 {
	return splitmix64(f.Seed ^ splitmix64(uint64(from)<<32|uint64(uint32(to))) ^ splitmix64(uint64(n)))
}

// frameAction decides the fate of data frame n on the from→to connection.
func (f *FaultPlan) frameAction(from, to int, n int64) faultAction {
	if f.KillAt > 0 && from == f.KillFrom && to == f.KillTo && n == f.KillAt {
		return faultKill
	}
	p := f.Drop + f.Dup + f.Trunc + f.Delay
	if p <= 0 {
		return faultNone
	}
	// 53 uniform bits, the float64 mantissa.
	u := float64(f.hash(from, to, n)>>11) / float64(1<<53)
	switch {
	case u < f.Drop:
		return faultDrop
	case u < f.Drop+f.Dup:
		return faultDup
	case u < f.Drop+f.Dup+f.Trunc:
		return faultTrunc
	case u < p:
		return faultDelay
	}
	return faultNone
}

// delayFor is the deterministic stall of a delayed frame.
func (f *FaultPlan) delayFor(from, to int, n int64) time.Duration {
	max := f.DelayMax
	if max <= 0 {
		max = 5 * time.Millisecond
	}
	return time.Duration(f.hash(from, to, ^n) % uint64(max))
}

// refuseDial reports whether dial attempt i (0-based) should be refused.
func (f *FaultPlan) refuseDial(attempt int) bool { return attempt < f.RefuseDials }

// crashAt reports whether process self must crash at this barrier.
func (f *FaultPlan) crashAt(self int, run, round int64) bool {
	return f.CrashRound > 0 && self == f.CrashProc && round == f.CrashRound &&
		(f.CrashRun == 0 || run == f.CrashRun)
}

// ParseFaultPlan parses the -faults flag syntax: comma-separated
// key=value pairs, e.g.
//
//	seed=7,crash=1@3,drop=0.02,dup=0.01,trunc=0.01,delay=0.01,kill=0>1@40,refuse=2
//
// Keys: seed (uint), drop/dup/trunc/delay (probability), delaymax
// (duration), kill (from>to@frame), refuse (count), crash (proc@round),
// crashrun (engine run, default 2 — the pipeline's improvement run).
// An empty string yields a nil plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	f := &FaultPlan{CrashRun: 2}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("net: fault plan: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			f.Seed, err = strconv.ParseUint(v, 10, 64)
		case "drop":
			f.Drop, err = parseProb(v)
		case "dup":
			f.Dup, err = parseProb(v)
		case "trunc":
			f.Trunc, err = parseProb(v)
		case "delay":
			f.Delay, err = parseProb(v)
		case "delaymax":
			f.DelayMax, err = time.ParseDuration(v)
		case "refuse":
			f.RefuseDials, err = strconv.Atoi(v)
		case "kill":
			pair, at, ok := strings.Cut(v, "@")
			from, to, ok2 := strings.Cut(pair, ">")
			if !ok || !ok2 {
				return nil, fmt.Errorf("net: fault plan: kill wants from>to@frame, got %q", v)
			}
			if f.KillFrom, err = strconv.Atoi(from); err == nil {
				if f.KillTo, err = strconv.Atoi(to); err == nil {
					f.KillAt, err = strconv.ParseInt(at, 10, 64)
				}
			}
		case "crash":
			proc, round, ok := strings.Cut(v, "@")
			if !ok {
				return nil, fmt.Errorf("net: fault plan: crash wants proc@round, got %q", v)
			}
			if f.CrashProc, err = strconv.Atoi(proc); err == nil {
				f.CrashRound, err = strconv.ParseInt(round, 10, 64)
			}
		case "crashrun":
			f.CrashRun, err = strconv.ParseInt(v, 10, 64)
		default:
			return nil, fmt.Errorf("net: fault plan: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("net: fault plan: %s=%s: %v", k, v, err)
		}
	}
	return f, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// PeerDownError reports a peer declared dead: its connection failed, or
// the liveness detector saw neither frames nor a consistent heartbeat for
// the configured window. Barrier is the last completed round barrier (-1
// when the failure precedes round context; the distributed engine fills
// it in).
type PeerDownError struct {
	Peer    int
	Barrier int64
	Cause   error
}

func (e *PeerDownError) Error() string {
	at := "barrier unknown"
	if e.Barrier >= 0 {
		at = fmt.Sprintf("last barrier %d", e.Barrier)
	}
	return fmt.Sprintf("net: process %d down (%s): %v", e.Peer, at, e.Cause)
}

func (e *PeerDownError) Unwrap() error { return e.Cause }

// InjectedCrashError is the deliberate death of a process whose FaultPlan
// armed crash injection — the chaos tests' stand-in for a real crash.
type InjectedCrashError struct {
	Run, Round int64
}

func (e *InjectedCrashError) Error() string {
	return fmt.Sprintf("net: injected crash at run %d barrier %d", e.Run, e.Round)
}
