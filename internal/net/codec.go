package net

import (
	"fmt"

	"mdegst/internal/sim"
)

// Frame payload codecs. Every multi-byte payload is varint-packed behind
// the frame's type byte; element counts are bounded by the remaining
// payload bytes before allocation, and wire records translate their
// opcodes through the handshake's canonical table, so a malformed or
// skewed frame fails with a typed *FrameError instead of corrupting a
// run or taking the process down (FuzzFrameCodec pins this).
//
// Round frames are pre-ranked runs (DESIGN.md §13): the (rank, count)
// header entries are strictly ascending in rank and the delivery batch is
// strictly ascending in its (Parent, Pos) merge key — both facts fall out
// of senders playing deliveries in canonical rank order — so both are
// delta-encoded. Consecutive ranks cost one byte instead of an absolute
// varint, which matters because every process broadcasts its full count
// list to every peer: on round-dominated workloads the header is most of
// the wire traffic. The sorted-run invariant is structural on the encode
// side and enforced on the decode side — a zero rank delta or a zero
// same-parent position delta is a typed *FrameError, so a corrupt peer can
// never smuggle an out-of-order run past the receiver's splice.
//
// Accumulated values are bounded during decode (ranks and parents below
// 1<<62, positions in int32, endpoints in int31, counts below 1<<32) so
// hostile deltas cannot overflow the receiver's prefix sums or indices.

// Decode-side bounds for accumulated delta values.
const (
	limitRank  = int64(1) << 62 // rank / parent accumulator bound
	limitCount = int64(1) << 32 // per-delivery send count bound
	limitPos   = int64(1<<31 - 1)
	limitNode  = uint64(1<<31 - 1)
)

// roundFlagStop is the graceful-stop bit of a round frame's flags: the
// sender has a stop request latched. Every process ORs all K flags of a
// barrier, so the cluster agrees on the stop at the same barrier.
const roundFlagStop = uint64(1)

// roundMsg is one process's barrier contribution: which run and round it
// belongs to, its control flags, the (rank, send count) pairs of the
// deliveries the sender played, and the delivery batch destined to the
// receiving process.
type roundMsg struct {
	seq    uint64
	round  int64
	flags  uint64
	counts []sim.RankCount
	batch  []sim.OutMsg
}

func appendRoundMsg(b []byte, seq uint64, round int64, flags uint64, counts []sim.RankCount, batch []sim.OutMsg, t *WireTable) []byte {
	b = appendRoundHeader(b, seq, round, flags, counts)
	return appendRoundBatch(b, batch, t)
}

// appendRoundHeader encodes the control prefix and the delta-encoded
// (rank, count) header; the split from the batch encoder lets the engine
// meter header bytes separately (NetStats.HeaderBytes). The first entry
// carries its rank absolutely; each later entry carries rank - prevRank,
// which the strictly-ascending invariant keeps positive (and usually 1).
func appendRoundHeader(b []byte, seq uint64, round int64, flags uint64, counts []sim.RankCount) []byte {
	b = appendUvarint(b, seq)
	b = appendVarint(b, round)
	b = appendUvarint(b, flags)
	b = appendUvarint(b, uint64(len(counts)))
	prev := int64(0)
	for i, c := range counts {
		if i == 0 {
			b = appendUvarint(b, uint64(c.Rank))
		} else {
			b = appendUvarint(b, uint64(c.Rank-prev))
		}
		b = appendUvarint(b, uint64(c.Count))
		prev = c.Rank
	}
	return b
}

// countsDecoder accumulates the header's rank deltas, rejecting
// non-ascending or overflowing input with typed errors.
type countsDecoder struct {
	prev  int64
	first bool
}

func newCountsDecoder() countsDecoder { return countsDecoder{first: true} }

func (d *countsDecoder) next(r *frameReader) (sim.RankCount, error) {
	dv, err := r.uvarint()
	if err != nil {
		return sim.RankCount{}, err
	}
	var rank int64
	if d.first {
		if dv >= uint64(limitRank) {
			return sim.RankCount{}, r.fail("rank header outside the rank bound")
		}
		rank = int64(dv)
		d.first = false
	} else {
		if dv == 0 {
			return sim.RankCount{}, r.fail("rank header not strictly ascending")
		}
		if dv >= uint64(limitRank) || d.prev+int64(dv) >= limitRank {
			return sim.RankCount{}, r.fail("rank header outside the rank bound")
		}
		rank = d.prev + int64(dv)
	}
	cv, err := r.uvarint()
	if err != nil {
		return sim.RankCount{}, err
	}
	if cv >= uint64(limitCount) {
		return sim.RankCount{}, r.fail("send count outside the count bound")
	}
	d.prev = rank
	return sim.RankCount{Rank: rank, Count: int64(cv)}, nil
}

// appendRoundBatch encodes the delivery batch destined to one peer as one
// pre-ranked run: records strictly ascending by (Parent, Pos). The first
// record is absolute; later records carry the parent delta and, within a
// parent (delta 0), the position delta — the common consecutive-send case
// costs two bytes of key instead of up to ten.
func appendRoundBatch(b []byte, batch []sim.OutMsg, t *WireTable) []byte {
	b = appendUvarint(b, uint64(len(batch)))
	prevParent, prevPos := int64(0), int64(0)
	for i, m := range batch {
		switch {
		case i == 0:
			b = appendUvarint(b, uint64(m.Parent))
			b = appendUvarint(b, uint64(m.Pos))
		case m.Parent == prevParent:
			b = appendUvarint(b, 0)
			b = appendUvarint(b, uint64(int64(m.Pos)-prevPos))
		default:
			b = appendUvarint(b, uint64(m.Parent-prevParent))
			b = appendUvarint(b, uint64(m.Pos))
		}
		prevParent, prevPos = m.Parent, int64(m.Pos)
		b = appendUvarint(b, uint64(m.From))
		b = appendUvarint(b, uint64(m.To))
		b = sim.AppendWire(b, m.Msg, t.Enc)
	}
	return b
}

// batchDecoder accumulates the batch's key deltas, rejecting runs that are
// not strictly key-sorted (a zero same-parent position delta) and any
// accumulator overflow with typed errors.
type batchDecoder struct {
	prevParent, prevPos int64
	first               bool
}

func newBatchDecoder() batchDecoder { return batchDecoder{first: true} }

func (d *batchDecoder) next(r *frameReader, t *WireTable, m *sim.OutMsg) error {
	dp, err := r.uvarint()
	if err != nil {
		return err
	}
	var parent, pos int64
	switch {
	case d.first:
		if dp >= uint64(limitRank) {
			return r.fail("batch parent outside the rank bound")
		}
		parent = int64(dp)
		pv, err := r.uvarint()
		if err != nil {
			return err
		}
		if pv > uint64(limitPos) {
			return r.fail("batch position outside the int32 bound")
		}
		pos = int64(pv)
		d.first = false
	case dp == 0:
		parent = d.prevParent
		dv, err := r.uvarint()
		if err != nil {
			return err
		}
		if dv == 0 {
			return r.fail("batch not strictly key-sorted")
		}
		if dv > uint64(limitPos) || d.prevPos+int64(dv) > limitPos {
			return r.fail("batch position outside the int32 bound")
		}
		pos = d.prevPos + int64(dv)
	default:
		if dp >= uint64(limitRank) || d.prevParent+int64(dp) >= limitRank {
			return r.fail("batch parent outside the rank bound")
		}
		parent = d.prevParent + int64(dp)
		pv, err := r.uvarint()
		if err != nil {
			return err
		}
		if pv > uint64(limitPos) {
			return r.fail("batch position outside the int32 bound")
		}
		pos = int64(pv)
	}
	d.prevParent, d.prevPos = parent, pos
	from, err := r.uvarint()
	if err != nil {
		return err
	}
	to, err := r.uvarint()
	if err != nil {
		return err
	}
	if from > limitNode || to > limitNode {
		return r.fail("batch endpoint outside the node bound")
	}
	wm, used, err := sim.DecodeWire(r.buf[r.at:], t.Dec)
	if err != nil {
		return &FrameError{Type: r.typ, Reason: fmt.Sprintf("wire record: %v", err)}
	}
	r.at += used
	*m = sim.OutMsg{Parent: parent, Pos: int32(pos), From: int32(from), To: int32(to), Msg: wm}
	return nil
}

// parseRoundMsg is the materializing round-frame parser — tests, fuzzing
// and anything that wants the whole frame as values. The engine's hot path
// uses the streaming decodeRound instead.
func parseRoundMsg(payload []byte, t *WireTable) (*roundMsg, error) {
	r := &frameReader{typ: frameRound, buf: payload}
	m := &roundMsg{}
	var err error
	if m.seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if m.round, err = r.varint(); err != nil {
		return nil, err
	}
	if m.flags, err = r.uvarint(); err != nil {
		return nil, err
	}
	nc, err := r.count(2)
	if err != nil {
		return nil, err
	}
	m.counts = make([]sim.RankCount, nc)
	cd := newCountsDecoder()
	for i := range m.counts {
		if m.counts[i], err = cd.next(r); err != nil {
			return nil, err
		}
	}
	if m.batch, err = parseBatch(r, t); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// roundHeader is the control prefix of a streamed round frame.
type roundHeader struct {
	seq   uint64
	round int64
	flags uint64
}

// decodeRound is the engine's zero-copy round-frame decode: the header's
// counts scatter straight into the barrier's persistent rank slab
// (bounds-checked against the round's rank space) and the batch records
// append into the per-peer reusable slab, so an unperturbed barrier
// allocates nothing. covered returns the count-entry total for the
// barrier's coverage cross-check. On any error the scratch contents are
// unspecified — the caller aborts the run.
func decodeRound(payload []byte, t *WireTable, rankSpace int64, cnt []int64, batch *[]sim.OutMsg) (roundHeader, int64, error) {
	r := &frameReader{typ: frameRound, buf: payload}
	var h roundHeader
	var err error
	if h.seq, err = r.uvarint(); err != nil {
		return h, 0, err
	}
	if h.round, err = r.varint(); err != nil {
		return h, 0, err
	}
	if h.flags, err = r.uvarint(); err != nil {
		return h, 0, err
	}
	nc, err := r.count(2)
	if err != nil {
		return h, 0, err
	}
	cd := newCountsDecoder()
	for i := 0; i < nc; i++ {
		c, err := cd.next(r)
		if err != nil {
			return h, 0, err
		}
		if c.Rank >= rankSpace {
			return h, 0, r.fail(fmt.Sprintf("rank %d outside the round's %d-delivery rank space", c.Rank, rankSpace))
		}
		cnt[c.Rank] = c.Count
	}
	nb, err := r.count(5)
	if err != nil {
		return h, 0, err
	}
	out := (*batch)[:0]
	bd := newBatchDecoder()
	var rec sim.OutMsg
	for i := 0; i < nb; i++ {
		if err := bd.next(r, t, &rec); err != nil {
			return h, 0, err
		}
		if rec.Parent >= rankSpace {
			return h, 0, r.fail(fmt.Sprintf("batch parent rank %d outside the round's %d-delivery rank space", rec.Parent, rankSpace))
		}
		out = append(out, rec)
	}
	*batch = out
	if err := r.done(); err != nil {
		return h, 0, err
	}
	return h, int64(nc), nil
}

// parseBatch materializes one pre-ranked delivery run (checkpoint uploads,
// tests, fuzzing).
func parseBatch(r *frameReader, t *WireTable) ([]sim.OutMsg, error) {
	n, err := r.count(5)
	if err != nil {
		return nil, err
	}
	batch := make([]sim.OutMsg, n)
	bd := newBatchDecoder()
	for i := range batch {
		if err := bd.next(r, t, &batch[i]); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

// counters is the frozen-report block shared by final and checkpoint
// frames: the summable scalars plus the sorted (opcode, round) and
// per-node breakdowns, with opcodes as canonical table indices.
func appendCounters(b []byte, ck *sim.Checkpoint, t *WireTable) []byte {
	b = appendVarint(b, ck.Messages)
	b = appendVarint(b, ck.Words)
	b = appendUvarint(b, uint64(ck.MaxWords))
	b = appendVarint(b, ck.CausalDepth)
	b = appendUvarint(b, uint64(len(ck.KindRounds)))
	for _, kr := range ck.KindRounds {
		b = appendUvarint(b, t.Enc(kr.Op))
		b = appendVarint(b, int64(kr.Round))
		b = appendVarint(b, kr.Count)
	}
	b = appendUvarint(b, uint64(len(ck.SentBy)))
	for _, s := range ck.SentBy {
		b = appendVarint(b, int64(s.Node))
		b = appendVarint(b, s.Count)
	}
	return b
}

func parseCounters(r *frameReader, t *WireTable, ck *sim.Checkpoint) error {
	var err error
	if ck.Messages, err = r.varint(); err != nil {
		return err
	}
	if ck.Words, err = r.varint(); err != nil {
		return err
	}
	mw, err := r.uvarint()
	if err != nil {
		return err
	}
	ck.MaxWords = int(mw)
	if ck.CausalDepth, err = r.varint(); err != nil {
		return err
	}
	nkr, err := r.count(3)
	if err != nil {
		return err
	}
	ck.KindRounds = make([]sim.KindRoundCount, nkr)
	for i := range ck.KindRounds {
		opIdx, err := r.uvarint()
		if err != nil {
			return err
		}
		op, err := t.Dec(opIdx)
		if err != nil {
			return err
		}
		round, err := r.varint()
		if err != nil {
			return err
		}
		count, err := r.varint()
		if err != nil {
			return err
		}
		ck.KindRounds[i] = sim.KindRoundCount{Op: op, Round: int(round), Count: count}
	}
	nsb, err := r.count(2)
	if err != nil {
		return err
	}
	ck.SentBy = make([]sim.SentByCount, nsb)
	for i := range ck.SentBy {
		node, err := r.varint()
		if err != nil {
			return err
		}
		count, err := r.varint()
		if err != nil {
			return err
		}
		ck.SentBy[i] = sim.SentByCount{Node: sim.NodeID(node), Count: count}
	}
	return nil
}

// ownedState pairs a dense node index with its encoded protocol state.
type ownedState struct {
	dense int32
	blob  []byte
}

func appendOwnedStates(b []byte, states []ownedState) []byte {
	b = appendUvarint(b, uint64(len(states)))
	for _, s := range states {
		b = appendUvarint(b, uint64(s.dense))
		b = appendUvarint(b, uint64(len(s.blob)))
		b = append(b, s.blob...)
	}
	return b
}

func parseOwnedStates(r *frameReader) ([]ownedState, error) {
	n, err := r.count(2)
	if err != nil {
		return nil, err
	}
	states := make([]ownedState, n)
	for i := range states {
		dense, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		blen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		blob, err := r.bytes(blen)
		if err != nil {
			return nil, err
		}
		states[i] = ownedState{dense: int32(dense), blob: blob}
	}
	return states, nil
}

// finalMsg is one process's quiescence all-gather contribution: its report
// counters and the encoded states of the nodes it owns. Receiving all K-1
// finals is also the run's closing barrier — no frame of the next run can
// overtake it on any connection.
type finalMsg struct {
	seq      uint64
	counters sim.Checkpoint
	states   []ownedState
}

func appendFinalMsg(b []byte, seq uint64, ck *sim.Checkpoint, states []ownedState, t *WireTable) []byte {
	b = appendUvarint(b, seq)
	b = appendCounters(b, ck, t)
	return appendOwnedStates(b, states)
}

func parseFinalMsg(payload []byte, t *WireTable) (*finalMsg, error) {
	r := &frameReader{typ: frameFinal, buf: payload}
	m := &finalMsg{}
	var err error
	if m.seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if err := parseCounters(r, t, &m.counters); err != nil {
		return nil, err
	}
	if m.states, err = parseOwnedStates(r); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// ckptMsg is one process's checkpoint shard, uploaded to the coordinator
// at an armed barrier: counters, owned states and the full key-sorted
// stream of deliveries the process sent into the frozen round.
type ckptMsg struct {
	seq      uint64
	round    int64
	counters sim.Checkpoint
	states   []ownedState
	pending  []sim.OutMsg
}

func appendCkptMsg(b []byte, seq uint64, round int64, ck *sim.Checkpoint, states []ownedState, pending []sim.OutMsg, t *WireTable) []byte {
	b = appendUvarint(b, seq)
	b = appendVarint(b, round)
	b = appendCounters(b, ck, t)
	b = appendOwnedStates(b, states)
	return appendRoundBatch(b, pending, t)
}

func parseCkptMsg(payload []byte, t *WireTable) (*ckptMsg, error) {
	r := &frameReader{typ: frameCkpt, buf: payload}
	m := &ckptMsg{}
	var err error
	if m.seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if m.round, err = r.varint(); err != nil {
		return nil, err
	}
	if err := parseCounters(r, t, &m.counters); err != nil {
		return nil, err
	}
	if m.states, err = parseOwnedStates(r); err != nil {
		return nil, err
	}
	if m.pending, err = parseBatch(r, t); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// ckptAck is the coordinator's commit acknowledgement: the checkpoint file
// for (seq, round) hit stable storage, peers may stop.
func appendCkptAck(b []byte, seq uint64, round int64) []byte {
	b = appendUvarint(b, seq)
	return appendVarint(b, round)
}

func parseCkptAck(payload []byte) (seq uint64, round int64, err error) {
	r := &frameReader{typ: frameCkptAck, buf: payload}
	if seq, err = r.uvarint(); err != nil {
		return 0, 0, err
	}
	if round, err = r.varint(); err != nil {
		return 0, 0, err
	}
	if err := r.done(); err != nil {
		return 0, 0, err
	}
	return seq, round, nil
}
