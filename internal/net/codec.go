package net

import (
	"fmt"

	"mdegst/internal/sim"
)

// Frame payload codecs. Every multi-byte payload is varint-packed behind
// the frame's type byte; element counts are bounded by the remaining
// payload bytes before allocation, and wire records translate their
// opcodes through the handshake's canonical table, so a malformed or
// skewed frame fails with a typed *FrameError instead of corrupting a
// run or taking the process down (FuzzFrameCodec pins this).

// roundFlagStop is the graceful-stop bit of a round frame's flags: the
// sender has a stop request latched. Every process ORs all K flags of a
// barrier, so the cluster agrees on the stop at the same barrier.
const roundFlagStop = uint64(1)

// roundMsg is one process's barrier contribution: which run and round it
// belongs to, its control flags, the (rank, send count) pairs of the
// deliveries the sender played, and the delivery batch destined to the
// receiving process.
type roundMsg struct {
	seq    uint64
	round  int64
	flags  uint64
	counts []sim.RankCount
	batch  []sim.OutMsg
}

func appendRoundMsg(b []byte, seq uint64, round int64, flags uint64, counts []sim.RankCount, batch []sim.OutMsg, t *WireTable) []byte {
	b = appendUvarint(b, seq)
	b = appendVarint(b, round)
	b = appendUvarint(b, flags)
	b = appendUvarint(b, uint64(len(counts)))
	for _, c := range counts {
		b = appendVarint(b, c.Rank)
		b = appendVarint(b, c.Count)
	}
	b = appendUvarint(b, uint64(len(batch)))
	for _, m := range batch {
		b = appendOutMsg(b, m, t)
	}
	return b
}

func parseRoundMsg(payload []byte, t *WireTable) (*roundMsg, error) {
	r := &frameReader{typ: frameRound, buf: payload}
	m := &roundMsg{}
	var err error
	if m.seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if m.round, err = r.varint(); err != nil {
		return nil, err
	}
	if m.flags, err = r.uvarint(); err != nil {
		return nil, err
	}
	nc, err := r.count(2)
	if err != nil {
		return nil, err
	}
	m.counts = make([]sim.RankCount, nc)
	for i := range m.counts {
		if m.counts[i].Rank, err = r.varint(); err != nil {
			return nil, err
		}
		if m.counts[i].Count, err = r.varint(); err != nil {
			return nil, err
		}
	}
	if m.batch, err = parseBatch(r, t); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// appendOutMsg encodes one delivery record: merge key, dense endpoints,
// wire record with table-translated opcode.
func appendOutMsg(b []byte, m sim.OutMsg, t *WireTable) []byte {
	b = appendVarint(b, m.Parent)
	b = appendUvarint(b, uint64(m.Pos))
	b = appendUvarint(b, uint64(m.From))
	b = appendUvarint(b, uint64(m.To))
	return sim.AppendWire(b, m.Msg, t.Enc)
}

func parseBatch(r *frameReader, t *WireTable) ([]sim.OutMsg, error) {
	n, err := r.count(5)
	if err != nil {
		return nil, err
	}
	batch := make([]sim.OutMsg, n)
	for i := range batch {
		if err := parseOutMsg(r, t, &batch[i]); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

func parseOutMsg(r *frameReader, t *WireTable, m *sim.OutMsg) error {
	parent, err := r.varint()
	if err != nil {
		return err
	}
	pos, err := r.uvarint()
	if err != nil {
		return err
	}
	from, err := r.uvarint()
	if err != nil {
		return err
	}
	to, err := r.uvarint()
	if err != nil {
		return err
	}
	wm, used, err := sim.DecodeWire(r.buf[r.at:], t.Dec)
	if err != nil {
		return &FrameError{Type: r.typ, Reason: fmt.Sprintf("wire record: %v", err)}
	}
	r.at += used
	*m = sim.OutMsg{Parent: parent, Pos: int32(pos), From: int32(from), To: int32(to), Msg: wm}
	return nil
}

// counters is the frozen-report block shared by final and checkpoint
// frames: the summable scalars plus the sorted (opcode, round) and
// per-node breakdowns, with opcodes as canonical table indices.
func appendCounters(b []byte, ck *sim.Checkpoint, t *WireTable) []byte {
	b = appendVarint(b, ck.Messages)
	b = appendVarint(b, ck.Words)
	b = appendUvarint(b, uint64(ck.MaxWords))
	b = appendVarint(b, ck.CausalDepth)
	b = appendUvarint(b, uint64(len(ck.KindRounds)))
	for _, kr := range ck.KindRounds {
		b = appendUvarint(b, t.Enc(kr.Op))
		b = appendVarint(b, int64(kr.Round))
		b = appendVarint(b, kr.Count)
	}
	b = appendUvarint(b, uint64(len(ck.SentBy)))
	for _, s := range ck.SentBy {
		b = appendVarint(b, int64(s.Node))
		b = appendVarint(b, s.Count)
	}
	return b
}

func parseCounters(r *frameReader, t *WireTable, ck *sim.Checkpoint) error {
	var err error
	if ck.Messages, err = r.varint(); err != nil {
		return err
	}
	if ck.Words, err = r.varint(); err != nil {
		return err
	}
	mw, err := r.uvarint()
	if err != nil {
		return err
	}
	ck.MaxWords = int(mw)
	if ck.CausalDepth, err = r.varint(); err != nil {
		return err
	}
	nkr, err := r.count(3)
	if err != nil {
		return err
	}
	ck.KindRounds = make([]sim.KindRoundCount, nkr)
	for i := range ck.KindRounds {
		opIdx, err := r.uvarint()
		if err != nil {
			return err
		}
		op, err := t.Dec(opIdx)
		if err != nil {
			return err
		}
		round, err := r.varint()
		if err != nil {
			return err
		}
		count, err := r.varint()
		if err != nil {
			return err
		}
		ck.KindRounds[i] = sim.KindRoundCount{Op: op, Round: int(round), Count: count}
	}
	nsb, err := r.count(2)
	if err != nil {
		return err
	}
	ck.SentBy = make([]sim.SentByCount, nsb)
	for i := range ck.SentBy {
		node, err := r.varint()
		if err != nil {
			return err
		}
		count, err := r.varint()
		if err != nil {
			return err
		}
		ck.SentBy[i] = sim.SentByCount{Node: sim.NodeID(node), Count: count}
	}
	return nil
}

// ownedState pairs a dense node index with its encoded protocol state.
type ownedState struct {
	dense int32
	blob  []byte
}

func appendOwnedStates(b []byte, states []ownedState) []byte {
	b = appendUvarint(b, uint64(len(states)))
	for _, s := range states {
		b = appendUvarint(b, uint64(s.dense))
		b = appendUvarint(b, uint64(len(s.blob)))
		b = append(b, s.blob...)
	}
	return b
}

func parseOwnedStates(r *frameReader) ([]ownedState, error) {
	n, err := r.count(2)
	if err != nil {
		return nil, err
	}
	states := make([]ownedState, n)
	for i := range states {
		dense, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		blen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		blob, err := r.bytes(blen)
		if err != nil {
			return nil, err
		}
		states[i] = ownedState{dense: int32(dense), blob: blob}
	}
	return states, nil
}

// finalMsg is one process's quiescence all-gather contribution: its report
// counters and the encoded states of the nodes it owns. Receiving all K-1
// finals is also the run's closing barrier — no frame of the next run can
// overtake it on any connection.
type finalMsg struct {
	seq      uint64
	counters sim.Checkpoint
	states   []ownedState
}

func appendFinalMsg(b []byte, seq uint64, ck *sim.Checkpoint, states []ownedState, t *WireTable) []byte {
	b = appendUvarint(b, seq)
	b = appendCounters(b, ck, t)
	return appendOwnedStates(b, states)
}

func parseFinalMsg(payload []byte, t *WireTable) (*finalMsg, error) {
	r := &frameReader{typ: frameFinal, buf: payload}
	m := &finalMsg{}
	var err error
	if m.seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if err := parseCounters(r, t, &m.counters); err != nil {
		return nil, err
	}
	if m.states, err = parseOwnedStates(r); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// ckptMsg is one process's checkpoint shard, uploaded to the coordinator
// at an armed barrier: counters, owned states and the full key-sorted
// stream of deliveries the process sent into the frozen round.
type ckptMsg struct {
	seq      uint64
	round    int64
	counters sim.Checkpoint
	states   []ownedState
	pending  []sim.OutMsg
}

func appendCkptMsg(b []byte, seq uint64, round int64, ck *sim.Checkpoint, states []ownedState, pending []sim.OutMsg, t *WireTable) []byte {
	b = appendUvarint(b, seq)
	b = appendVarint(b, round)
	b = appendCounters(b, ck, t)
	b = appendOwnedStates(b, states)
	b = appendUvarint(b, uint64(len(pending)))
	for _, m := range pending {
		b = appendOutMsg(b, m, t)
	}
	return b
}

func parseCkptMsg(payload []byte, t *WireTable) (*ckptMsg, error) {
	r := &frameReader{typ: frameCkpt, buf: payload}
	m := &ckptMsg{}
	var err error
	if m.seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if m.round, err = r.varint(); err != nil {
		return nil, err
	}
	if err := parseCounters(r, t, &m.counters); err != nil {
		return nil, err
	}
	if m.states, err = parseOwnedStates(r); err != nil {
		return nil, err
	}
	if m.pending, err = parseBatch(r, t); err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// ckptAck is the coordinator's commit acknowledgement: the checkpoint file
// for (seq, round) hit stable storage, peers may stop.
func appendCkptAck(b []byte, seq uint64, round int64) []byte {
	b = appendUvarint(b, seq)
	return appendVarint(b, round)
}

func parseCkptAck(payload []byte) (seq uint64, round int64, err error) {
	r := &frameReader{typ: frameCkptAck, buf: payload}
	if seq, err = r.uvarint(); err != nil {
		return 0, 0, err
	}
	if round, err = r.varint(); err != nil {
		return 0, 0, err
	}
	if err := r.done(); err != nil {
		return 0, 0, err
	}
	return seq, round, nil
}
