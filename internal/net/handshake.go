package net

import (
	"fmt"
	"sort"

	"mdegst/internal/sim"
)

// The versioned handshake. Opcode numbers are process-local (they depend
// on package init order), so two processes must agree on a numbering
// before any WireMsg crosses a socket. The canonical wire table fixes one:
// every registered kind string, sorted, numbered from 1 (0 is reserved for
// OpNone, mirroring the registry). The hello frame each side sends first
// carries its protocol version, identity, cluster shape, snapshot
// fingerprint and its full table — kind strings plus payload bounds and
// the rounded flag — and the receiving side verifies the peer's table is
// exactly its own. Agreement means batches, state blobs and counter
// uploads can use table indices directly; disagreement (skewed binaries,
// wrong cluster, wrong graph) fails fast with a typed *HandshakeError
// before any protocol traffic flows.

// handshakeVersion is the plane's wire-protocol version. Version 2 added
// a flags uvarint to round frames (the graceful-stop bit) and the
// heartbeat frame type. Version 3 switched round and checkpoint delivery
// runs to the pre-ranked delta encoding (strictly-ascending rank headers
// and (Parent, Pos) batch keys carried as deltas, DESIGN.md §13) — the
// same byte streams parsed as version 2 would mis-accumulate keys, so
// the version gates it.
const handshakeVersion = 3

// handshakeMagic opens every hello payload.
var handshakeMagic = [8]byte{'M', 'D', 'S', 'T', 'N', 'E', 'T', '1'}

// HandshakeError is the typed error for hello frames that are malformed or
// disagree with the local process: version skew, cluster-shape or
// snapshot-fingerprint mismatches, identity conflicts, or an opcode table
// that differs from the local registry's canonical form.
type HandshakeError struct{ Reason string }

func (e *HandshakeError) Error() string { return "net: handshake: " + e.Reason }

// Fingerprint pins what a cluster of processes must agree on before
// running: the process count and the compiled snapshot's shape.
type Fingerprint struct {
	Procs        int
	N, HalfEdges int
}

// WireTable is the canonical cross-process opcode numbering: all
// registered kinds, sorted, numbered from 1.
type WireTable struct {
	kinds   []string   // index -> kind; kinds[0] unused
	ops     []sim.Op   // index -> process-local opcode
	indexOf []uint64   // process-local opcode -> index (0 = unmapped)
	specs   []tableRow // index-aligned payload bounds for verification
}

type tableRow struct {
	minW, maxW uint8
	rounded    bool
}

// CanonicalTable builds the local registry's canonical wire table.
func CanonicalTable() *WireTable {
	type entry struct {
		kind string
		op   sim.Op
		row  tableRow
	}
	var entries []entry
	for _, s := range sim.Schemas() {
		for i := 0; i < s.Len(); i++ {
			sp := s.Spec(i)
			entries = append(entries, entry{
				kind: sp.Kind,
				op:   s.Op(i),
				row:  tableRow{minW: uint8(sp.MinPayload), maxW: uint8(sp.MaxPayload), rounded: sp.Rounded},
			})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].kind < entries[j].kind })
	t := &WireTable{
		kinds:   make([]string, 1, len(entries)+1),
		ops:     make([]sim.Op, 1, len(entries)+1),
		indexOf: make([]uint64, sim.NumOps()),
		specs:   make([]tableRow, 1, len(entries)+1),
	}
	for _, e := range entries {
		t.kinds = append(t.kinds, e.kind)
		t.ops = append(t.ops, e.op)
		t.specs = append(t.specs, e.row)
		t.indexOf[e.op] = uint64(len(t.kinds) - 1)
	}
	return t
}

// Enc translates a process-local opcode to its table index — the encoder
// handed to sim.AppendWire and the state encoders.
func (t *WireTable) Enc(op sim.Op) uint64 {
	if int(op) >= len(t.indexOf) {
		return 0
	}
	return t.indexOf[op]
}

// Dec translates a table index back to the process-local opcode.
func (t *WireTable) Dec(idx uint64) (sim.Op, error) {
	if idx == 0 || idx >= uint64(len(t.ops)) {
		return sim.OpNone, &FrameError{Reason: fmt.Sprintf("opcode index %d outside the wire table", idx)}
	}
	return t.ops[idx], nil
}

// Len returns the number of table entries including the reserved slot 0.
func (t *WireTable) Len() int { return len(t.kinds) }

// hello is the decoded form of a handshake frame.
type hello struct {
	version uint64
	self    int
	fp      Fingerprint
}

// appendHello encodes this process's hello payload.
func appendHello(b []byte, self int, fp Fingerprint, t *WireTable) []byte {
	b = append(b, handshakeMagic[:]...)
	b = appendUvarint(b, handshakeVersion)
	b = appendUvarint(b, uint64(self))
	b = appendUvarint(b, uint64(fp.Procs))
	b = appendUvarint(b, uint64(fp.N))
	b = appendUvarint(b, uint64(fp.HalfEdges))
	b = appendUvarint(b, uint64(len(t.kinds)-1))
	for i := 1; i < len(t.kinds); i++ {
		b = appendUvarint(b, uint64(len(t.kinds[i])))
		b = append(b, t.kinds[i]...)
		b = appendUvarint(b, uint64(t.specs[i].minW))
		b = appendUvarint(b, uint64(t.specs[i].maxW))
		if t.specs[i].rounded {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// parseHello decodes and verifies a peer's hello payload against the local
// fingerprint and canonical table. Malformed bytes or any disagreement
// return a typed *HandshakeError, never panic.
func parseHello(payload []byte, fp Fingerprint, t *WireTable) (*hello, error) {
	r := &frameReader{typ: frameHello, buf: payload}
	magic, err := r.bytes(uint64(len(handshakeMagic)))
	if err != nil {
		return nil, &HandshakeError{Reason: "truncated magic"}
	}
	if string(magic) != string(handshakeMagic[:]) {
		return nil, &HandshakeError{Reason: "bad magic: not an mdst transport peer"}
	}
	version, err := r.uvarint()
	if err != nil {
		return nil, &HandshakeError{Reason: "truncated version"}
	}
	if version != handshakeVersion {
		return nil, &HandshakeError{Reason: fmt.Sprintf("protocol version %d (want %d)", version, handshakeVersion)}
	}
	self, err := r.uvarint()
	if err != nil {
		return nil, &HandshakeError{Reason: "truncated identity"}
	}
	procs, err := r.uvarint()
	if err != nil {
		return nil, &HandshakeError{Reason: "truncated process count"}
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, &HandshakeError{Reason: "truncated node count"}
	}
	he, err := r.uvarint()
	if err != nil {
		return nil, &HandshakeError{Reason: "truncated edge count"}
	}
	if int(procs) != fp.Procs || int(n) != fp.N || int(he) != fp.HalfEdges {
		return nil, &HandshakeError{Reason: fmt.Sprintf(
			"cluster fingerprint mismatch: peer has procs=%d n=%d halfEdges=%d, local procs=%d n=%d halfEdges=%d",
			procs, n, he, fp.Procs, fp.N, fp.HalfEdges)}
	}
	if self >= procs {
		return nil, &HandshakeError{Reason: fmt.Sprintf("peer identity %d outside the %d-process cluster", self, procs)}
	}
	nKinds, err := r.count(4)
	if err != nil {
		return nil, &HandshakeError{Reason: "truncated opcode table"}
	}
	if nKinds != len(t.kinds)-1 {
		return nil, &HandshakeError{Reason: fmt.Sprintf("opcode table has %d kinds, local registry has %d", nKinds, len(t.kinds)-1)}
	}
	for i := 1; i <= nKinds; i++ {
		klen, err := r.uvarint()
		if err != nil {
			return nil, &HandshakeError{Reason: "truncated opcode table"}
		}
		kb, err := r.bytes(klen)
		if err != nil {
			return nil, &HandshakeError{Reason: "truncated opcode table"}
		}
		minW, err := r.uvarint()
		if err != nil {
			return nil, &HandshakeError{Reason: "truncated opcode table"}
		}
		maxW, err := r.uvarint()
		if err != nil {
			return nil, &HandshakeError{Reason: "truncated opcode table"}
		}
		rb, err := r.bytes(1)
		if err != nil {
			return nil, &HandshakeError{Reason: "truncated opcode table"}
		}
		if string(kb) != t.kinds[i] {
			return nil, &HandshakeError{Reason: fmt.Sprintf("opcode table entry %d is %q, local registry has %q (binary skew?)", i, kb, t.kinds[i])}
		}
		row := t.specs[i]
		if uint8(minW) != row.minW || uint8(maxW) != row.maxW || (rb[0] != 0) != row.rounded {
			return nil, &HandshakeError{Reason: fmt.Sprintf("schema for kind %q disagrees with the local registry", kb)}
		}
	}
	if err := r.done(); err != nil {
		return nil, &HandshakeError{Reason: "trailing bytes after opcode table"}
	}
	return &hello{version: version, self: int(self), fp: fp}, nil
}
