package mdst_test

import (
	"fmt"
	"testing"

	"mdegst/internal/fr"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/spanning"
)

// TestTargetDifferential: RunTarget must match TwinTarget exactly for every
// target value, as the untargeted runs do.
func TestTargetDifferential(t *testing.T) {
	g := graph.BarabasiAlbert(40, 2, 17)
	t0, err := spanning.StarTree(g)
	if err != nil {
		t.Fatal(err)
	}
	k0, _ := t0.MaxDegree()
	for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi, mdst.Hybrid} {
		for target := 0; target <= k0; target += 3 {
			t.Run(fmt.Sprintf("%v/target=%d", mode, target), func(t *testing.T) {
				res, err := mdst.RunTarget(unitEngine(), g, t0, mode, target)
				if err != nil {
					t.Fatal(err)
				}
				want, stats, err := fr.TwinTarget(g, t0, mode, target)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Tree.Equal(want) {
					t.Fatal("trees differ")
				}
				if res.Rounds != stats.Rounds || res.Swaps != stats.Swaps {
					t.Errorf("rounds/swaps %d/%d, twin %d/%d", res.Rounds, res.Swaps, stats.Rounds, stats.Swaps)
				}
			})
		}
	}
}

// TestTargetSemantics: with target t, the run stops at the first round whose
// maximum degree is <= t, so the final degree lies between the locally
// optimal k* and max(t, k*), and the run is never longer than the full one.
func TestTargetSemantics(t *testing.T) {
	g := graph.Gnm(50, 150, 23)
	t0, err := spanning.StarTree(g)
	if err != nil {
		t.Fatal(err)
	}
	full, err := mdst.Run(unitEngine(), g, t0, mdst.Single)
	if err != nil {
		t.Fatal(err)
	}
	kStar := full.FinalDegree
	k0 := full.InitialDegree
	for target := 0; target <= k0+1; target++ {
		res, err := mdst.RunTarget(unitEngine(), g, t0, mdst.Single, target)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalDegree < kStar {
			t.Errorf("target %d: degree %d below the local optimum %d", target, res.FinalDegree, kStar)
		}
		upper := target
		if upper < kStar {
			upper = kStar
		}
		if res.FinalDegree > upper {
			t.Errorf("target %d: degree %d above max(target,k*)=%d", target, res.FinalDegree, upper)
		}
		if res.Rounds > full.Rounds {
			t.Errorf("target %d: %d rounds exceed the full run's %d", target, res.Rounds, full.Rounds)
		}
		if res.Swaps > full.Swaps {
			t.Errorf("target %d: %d swaps exceed the full run's %d", target, res.Swaps, full.Swaps)
		}
	}
}

// TestTargetAlreadyMet: a target at or above the initial degree must
// terminate in one round with no exchange.
func TestTargetAlreadyMet(t *testing.T) {
	g := graph.Gnp(25, 0.25, 31)
	t0, err := spanning.BFSTree(g, g.Nodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	k0, _ := t0.MaxDegree()
	res, err := mdst.RunTarget(unitEngine(), g, t0, mdst.Hybrid, k0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || res.Swaps != 0 {
		t.Errorf("rounds=%d swaps=%d, want 1 and 0", res.Rounds, res.Swaps)
	}
	if !res.Tree.SameEdges(t0) {
		t.Error("tree was modified although the target was already met")
	}
}

// TestTargetBelowTwoActsAsUnbounded: targets 0..2 all mean "improve fully".
func TestTargetBelowTwoActsAsUnbounded(t *testing.T) {
	g := graph.Wheel(14)
	t0, err := spanning.StarTree(g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mdst.Run(unitEngine(), g, t0, mdst.Single)
	if err != nil {
		t.Fatal(err)
	}
	for target := 0; target <= 2; target++ {
		res, err := mdst.RunTarget(unitEngine(), g, t0, mdst.Single, target)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Tree.Equal(ref.Tree) {
			t.Errorf("target %d changed the result", target)
		}
	}
}
