package mdst_test

import (
	"fmt"
	"testing"

	"mdegst/internal/fr"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
	"mdegst/internal/tree"
)

func unitEngine() sim.Engine { return &sim.EventEngine{Delay: sim.UnitDelay} }

func testGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"path6", graph.Path(6)},
		{"ring8", graph.Ring(8)},
		{"star10", graph.Star(10)},
		{"wheel12", graph.Wheel(12)},
		{"complete8", graph.Complete(8)},
		{"grid4x4", graph.Grid(4, 4)},
		{"hyper4", graph.Hypercube(4)},
		{"lollipop", graph.Lollipop(5, 6)},
		{"caterpillar", graph.Caterpillar(6, 2)},
		{"bipartite", graph.CompleteBipartite(3, 7)},
		{"gnp20", graph.Gnp(20, 0.3, 9)},
		{"gnp40sparse", graph.Gnp(40, 0.1, 10)},
		{"gnm30", graph.Gnm(30, 60, 11)},
		{"ba25", graph.BarabasiAlbert(25, 2, 12)},
		{"geo20", graph.RandomGeometric(20, 0.4, 13)},
		{"hamchords", graph.HamiltonianPlusChords(24, 30, 14)},
		{"tree15", graph.RandomTree(15, 15)},
	}
}

func initialTrees(t *testing.T, g *graph.Graph) map[string]*tree.Tree {
	t.Helper()
	out := make(map[string]*tree.Tree)
	var err error
	if out["bfs"], err = spanning.BFSTree(g, g.Nodes()[0]); err != nil {
		t.Fatal(err)
	}
	if out["star"], err = spanning.StarTree(g); err != nil {
		t.Fatal(err)
	}
	if out["random"], err = spanning.RandomST(g, 4242); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDistributedMatchesSequentialTwin is the central differential test:
// the distributed protocol and its sequential twin must agree exactly —
// same final tree (root, orientation and all), same rounds, same exchanges —
// for every graph family, initial tree and mode.
func TestDistributedMatchesSequentialTwin(t *testing.T) {
	for _, tc := range testGraphs() {
		for tname, t0 := range initialTrees(t, tc.g) {
			for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi, mdst.Hybrid} {
				name := fmt.Sprintf("%s/%s/%s", tc.name, tname, mode)
				t.Run(name, func(t *testing.T) {
					res, err := mdst.Run(unitEngine(), tc.g, t0, mode)
					if err != nil {
						t.Fatal(err)
					}
					want, stats, err := fr.Twin(tc.g, t0, mode)
					if err != nil {
						t.Fatal(err)
					}
					if !res.Tree.Equal(want) {
						t.Fatalf("trees differ:\ndistributed:\n%v\ntwin:\n%v", res.Tree, want)
					}
					if res.Rounds != stats.Rounds {
						t.Errorf("rounds = %d, twin = %d", res.Rounds, stats.Rounds)
					}
					if res.Swaps != stats.Swaps {
						t.Errorf("swaps = %d, twin = %d", res.Swaps, stats.Swaps)
					}
					if res.FinalDegree > res.InitialDegree {
						t.Errorf("degree increased: %d -> %d", res.InitialDegree, res.FinalDegree)
					}
				})
			}
		}
	}
}

// TestDeliveryOrderIndependence: the final tree must not depend on the
// engine, the delay distribution, or FIFO vs non-FIFO delivery.
func TestDeliveryOrderIndependence(t *testing.T) {
	engines := map[string]func() sim.Engine{
		"unit":    func() sim.Engine { return &sim.EventEngine{Delay: sim.UnitDelay} },
		"rand1":   func() sim.Engine { return &sim.EventEngine{Delay: sim.UniformDelay(0.02), Seed: 1, FIFO: true} },
		"rand2":   func() sim.Engine { return &sim.EventEngine{Delay: sim.UniformDelay(0.02), Seed: 2, FIFO: true} },
		"nofifo1": func() sim.Engine { return &sim.EventEngine{Delay: sim.UniformDelay(0.02), Seed: 3, FIFO: false} },
		"nofifo2": func() sim.Engine { return &sim.EventEngine{Delay: sim.UniformDelay(0.02), Seed: 4, FIFO: false} },
		"async":   func() sim.Engine { return &sim.AsyncEngine{} },
	}
	graphs := []*graph.Graph{
		graph.Gnp(24, 0.25, 101),
		graph.Wheel(16),
		graph.BarabasiAlbert(20, 3, 102),
	}
	for gi, g := range graphs {
		t0, err := spanning.StarTree(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi, mdst.Hybrid} {
			var ref *tree.Tree
			for ename, mk := range engines {
				name := fmt.Sprintf("g%d/%s/%s", gi, mode, ename)
				t.Run(name, func(t *testing.T) {
					res, err := mdst.Run(mk(), g, t0, mode)
					if err != nil {
						t.Fatal(err)
					}
					if ref == nil {
						ref = res.Tree
						return
					}
					if !res.Tree.Equal(ref) {
						t.Errorf("final tree depends on delivery order")
					}
				})
			}
		}
	}
}

// TestFigure1Exchange reproduces the paper's Figure 1: a root p of maximum
// degree with children x and x', where an outgoing edge between the two
// fragments lets the exchange lower p's degree.
func TestFigure1Exchange(t *testing.T) {
	// p=0 with children x=1, x', and another; the fragment under x contains
	// C=3,D=4; x'=2 leads to E=5. Non-tree edge (4,5) joins the fragments.
	g := graph.New()
	g.MustAddEdge(0, 1) // p-x
	g.MustAddEdge(0, 2) // p-x'
	g.MustAddEdge(0, 6) // p-third child: degree 3
	g.MustAddEdge(1, 3) // x-C
	g.MustAddEdge(1, 4) // x-D
	g.MustAddEdge(4, 5) // D-E: the improving outgoing edge
	g.MustAddEdge(2, 5) // x'-E
	t0, err := tree.FromParentMap(0, map[graph.NodeID]graph.NodeID{
		0: 0, 1: 0, 2: 0, 6: 0, 3: 1, 4: 1, 5: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := t0.Validate(g); err != nil {
		t.Fatal(err)
	}
	deg0, at := t0.MaxDegree()
	if deg0 != 3 || at[0] != 0 {
		t.Fatalf("setup: max degree %d at %v, want 3 at node 0", deg0, at)
	}
	res, err := mdst.Run(unitEngine(), g, t0, mdst.Single)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalDegree != 2 {
		t.Errorf("final degree = %d, want 2 (tree becomes a chain)", res.FinalDegree)
	}
	if !res.Tree.HasEdge(4, 5) {
		t.Errorf("exchange should have added edge (4,5); tree:\n%v", res.Tree)
	}
	if res.Tree.HasEdge(0, 1) {
		t.Errorf("exchange should have removed a root edge toward the reporting fragment")
	}
}

// TestStarWorstCase: on the star graph the unique spanning tree has degree
// n-1 and no improvement is possible; the protocol must terminate after the
// first round without touching the tree.
func TestStarWorstCase(t *testing.T) {
	g := graph.Star(9)
	t0, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi} {
		res, err := mdst.Run(unitEngine(), g, t0, mode)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalDegree != 8 || res.Swaps != 0 {
			t.Errorf("%v: degree %d swaps %d, want 8 and 0", mode, res.FinalDegree, res.Swaps)
		}
	}
}

// TestWheelImprovesHubStar: starting from the hub star of a wheel (degree
// n-1), the protocol must bring the degree down to at most 3 — the classic
// motivating example.
func TestWheelImprovesHubStar(t *testing.T) {
	g := graph.Wheel(12)
	t0, err := spanning.StarTree(g)
	if err != nil {
		t.Fatal(err)
	}
	d0, _ := t0.MaxDegree()
	if d0 != 11 {
		t.Fatalf("setup: star tree degree %d, want 11", d0)
	}
	for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi} {
		res, err := mdst.Run(unitEngine(), g, t0, mode)
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalDegree > 3 {
			t.Errorf("%v: final degree %d, want <= 3", mode, res.FinalDegree)
		}
	}
}

// TestChainStopsAtK2: a ring's spanning trees are chains (k=2); the
// protocol must stop in one round.
func TestChainStopsAtK2(t *testing.T) {
	g := graph.Ring(10)
	t0, err := spanning.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mdst.Run(unitEngine(), g, t0, mdst.Single)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || res.Swaps != 0 {
		t.Errorf("rounds=%d swaps=%d, want 1 round, 0 swaps", res.Rounds, res.Swaps)
	}
}

// TestTinyNetworks covers the degenerate sizes.
func TestTinyNetworks(t *testing.T) {
	one := graph.New()
	one.AddNode(7)
	for _, g := range []*graph.Graph{one, graph.Path(2), graph.Path(3), graph.Complete(3)} {
		t0, err := spanning.BFSTree(g, g.Nodes()[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi} {
			res, err := mdst.Run(unitEngine(), g, t0, mode)
			if err != nil {
				t.Fatalf("n=%d: %v", g.N(), err)
			}
			if res.Rounds != 1 {
				t.Errorf("n=%d %v: rounds = %d, want 1", g.N(), mode, res.Rounds)
			}
		}
	}
}

// TestAsyncRace runs the protocol under the goroutine engine (with -race)
// over several seeds and graphs.
func TestAsyncRace(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.Gnp(18, 0.3, 200+seed)
		t0, err := spanning.StarTree(g)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := fr.Twin(g, t0, mdst.Multi)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mdst.Run(&sim.AsyncEngine{}, g, t0, mdst.Multi)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Tree.Equal(want) {
			t.Errorf("seed %d: async result differs from twin", seed)
		}
	}
}
