package mdst

import (
	"fmt"

	"mdegst/internal/sim"
)

// SearchDegree and MoveRoot (paper §3.2.1, §3.2.2).

// startRound is executed by the current tree root: it broadcasts mStart and
// begins the SearchDegree convergecast.
func (n *Node) startRound(ctx sim.Context, round int, clear bool) {
	n.round = round
	n.resetRound()
	if clear {
		n.exhausted = false
	}
	n.agg = n.ownContribution()
	n.searchPending = len(n.children)
	for _, c := range n.children {
		ctx.Send(c, newStart(round, clear, n.phase))
	}
	if n.searchPending == 0 {
		n.decide(ctx) // single-node tree
	}
}

func (n *Node) onStart(ctx sim.Context, from sim.NodeID, msg mStart) {
	if msg.round != n.round+1 {
		panic(fmt.Sprintf("mdst: node %d in round %d got start of round %d", n.id, n.round, msg.round))
	}
	n.round = msg.round
	n.phase = msg.phase
	n.resetRound()
	if msg.clear {
		n.exhausted = false
	}
	n.agg = n.ownContribution()
	n.searchPending = len(n.children)
	for _, c := range n.children {
		ctx.Send(c, newStart(msg.round, msg.clear, msg.phase))
	}
	if n.searchPending == 0 {
		// Leaf: "every leaf of the ST sends a message with its degree".
		ctx.Send(n.parent, newDeg(n.round, n.agg.k, n.agg.cand))
	}
}

func (n *Node) onDeg(ctx sim.Context, from sim.NodeID, msg mDeg) {
	child := degAgg{k: msg.k, cand: msg.cand}
	// Any change to the aggregate means the child's subtree supplied the
	// winning entry, so the via pointer follows it ("each node keeps, in a
	// variable named via, by which processor arrived the maximum degree
	// with minimum identity").
	if merged := mergeAgg(n.agg, child); merged != n.agg {
		n.agg = merged
		n.via = from
	}
	n.searchPending--
	if n.searchPending > 0 {
		return
	}
	if n.hasParent {
		ctx.Send(n.parent, newDeg(n.round, n.agg.k, n.agg.cand))
		return
	}
	n.decide(ctx)
}

// decide runs at the root once the whole tree reported: terminate, act as
// owner, or move the root toward the chosen maximum-degree node.
func (n *Node) decide(ctx sim.Context) {
	n.kAll = n.agg.k
	// "until no improvement is found or k = 2 (the tree is a chain)" —
	// or the caller's degree target is met.
	if n.kAll <= n.stopDegree() {
		n.terminate(ctx)
		return
	}
	if n.agg.cand == noCand {
		// Single mode: every maximum-degree node is exhausted — the tree
		// is locally optimal for all of them.
		n.terminate(ctx)
		return
	}
	if n.agg.cand == n.id {
		n.becomeOwner(ctx, n.kAll)
		return
	}
	// MoveRoot with path reversal: "Neighbour via becomes the parent".
	target := n.agg.cand
	via := n.via
	if via == n.id {
		panic(fmt.Sprintf("mdst: root %d has no via toward target %d", n.id, target))
	}
	n.removeChild(via)
	n.parent = via
	n.hasParent = true
	ctx.Send(via, newMove(n.round, n.kAll, target))
}

func (n *Node) onMove(ctx sim.Context, from sim.NodeID, msg mMove) {
	if !n.hasParent || n.parent != from {
		panic(fmt.Sprintf("mdst: node %d got move from non-parent %d", n.id, from))
	}
	// The sender reversed its pointer: it is now our child.
	n.addChild(from)
	n.kAll = msg.k
	if msg.target == n.id {
		n.hasParent = false
		n.becomeOwner(ctx, msg.k)
		return
	}
	via := n.via
	if via == n.id {
		panic(fmt.Sprintf("mdst: node %d has no via toward target %d", n.id, msg.target))
	}
	n.removeChild(via)
	n.parent = via
	ctx.Send(via, newMove(n.round, msg.k, msg.target))
}

// terminate broadcasts mTerm: the algorithm is finished and every node
// learns it (termination by process).
func (n *Node) terminate(ctx sim.Context) {
	n.terminated = true
	for _, c := range n.children {
		ctx.Send(c, newTerm(n.round))
	}
}

func (n *Node) onTerm(ctx sim.Context, msg mTerm) {
	n.terminated = true
	for _, c := range n.children {
		ctx.Send(c, newTerm(n.round))
	}
}
