package mdst

import (
	"fmt"

	"mdegst/internal/sim"
)

// Cut, BFS wave and BFSBack aggregation (paper §3.2.3–3.2.5, §3.2.6).

// becomeOwner turns this node into an owner for the round: the acting root
// after MoveRoot, or in Multi mode any maximum-degree node reached by the
// wave. The owner virtually cuts its children, making each a fragment root.
func (n *Node) becomeOwner(ctx sim.Context, k int) {
	n.isOwner = true
	n.actingRoot = !n.hasParent
	n.kAll = k
	n.ownerPending = len(n.children)
	for _, c := range n.children {
		ctx.Send(c, newCut(n.round, k, n.id))
	}
	if n.ownerPending == 0 {
		n.ownerComplete(ctx)
	}
}

func (n *Node) onCut(ctx sim.Context, from sim.NodeID, msg mCut) {
	if !n.hasParent || n.parent != from {
		panic(fmt.Sprintf("mdst: node %d got cut from non-parent %d", n.id, from))
	}
	n.kAll = msg.k
	if n.phase == Multi && n.degree() == msg.k {
		// §3.2.6: a maximum-degree node met by the wave behaves like a root.
		n.becomeOwner(ctx, msg.k)
		return
	}
	// This node becomes the root of a fragment named (owner, self).
	n.enterFragment(ctx, fragID{owner: msg.owner, root: n.id})
}

// enterFragment adopts a fragment identity and broadcasts the BFS wave to
// every neighbour except the tree parent.
func (n *Node) enterFragment(ctx sim.Context, f fragID) {
	n.fragKnown = true
	n.frag = f
	n.bfsPending = 0
	for _, w := range ctx.Neighbors() {
		if n.hasParent && w == n.parent {
			continue
		}
		n.bfsPending++
		ctx.Send(w, newBFS(n.round, n.kAll, f.owner, f.root))
	}
	if n.bfsPending == 0 {
		n.sendAggregate(ctx)
	}
}

// onBFS handles the wave. From the parent it spreads the fragment identity;
// from anyone else it is a probe over a non-tree edge, answered according to
// the paper's fragment-identity comparison. It returns false to defer the
// probe until this node knows its own fragment.
func (n *Node) onBFS(ctx sim.Context, from sim.NodeID, msg mBFS) bool {
	if n.hasParent && from == n.parent {
		n.kAll = msg.k
		if n.phase == Multi && n.degree() == msg.k {
			n.becomeOwner(ctx, msg.k)
			return true
		}
		n.enterFragment(ctx, fragID{owner: msg.owner, root: msg.fragRoot})
		return true
	}
	// Probe over a non-tree edge.
	if n.isOwner {
		// Owners answer immediately: their degree k disqualifies the edge,
		// but the answer unblocks the prober's count.
		ctx.Send(from, newCousin(n.round, n.degree(), n.id, n.id))
		return true
	}
	if !n.fragKnown {
		// "the answer has to be delayed until x learns its fragment
		// identity" (paper, first case).
		return false
	}
	theirs := fragID{owner: msg.owner, root: msg.fragRoot}
	switch {
	case theirs == n.frag:
		// Same fragment: both endpoints resolve the edge silently.
		n.resolveNeighbor(ctx)
	case theirs.less(n.frag):
		// "(r,r') < (p,p'): x replies by a BFSBack" — the probing side
		// records the cousin edge; we only resolve.
		ctx.Send(from, newCousin(n.round, n.degree(), n.frag.owner, n.frag.root))
		n.resolveNeighbor(ctx)
	default:
		// "(r,r') > (p,p')": our own BFS to that neighbour will be
		// answered instead; nothing to do (paper, third case).
	}
	return true
}

// onCousin records an outgoing edge discovered by our probe, subject to the
// paper's filters: both endpoints must have tree degree at most k-2
// ("nodes of degree k-1 cannot be considered"), and in Multi mode the edge
// must connect two fragments of the same owner so the exchange is verifiably
// cycle-free (DESIGN.md deviation 4).
func (n *Node) onCousin(ctx sim.Context, from sim.NodeID, msg mCousin) {
	if !n.fragKnown {
		panic(fmt.Sprintf("mdst: node %d got cousin answer without fragment", n.id))
	}
	usable := n.degree() <= n.kAll-2 && msg.deg <= n.kAll-2
	if usable {
		theirs := fragID{owner: msg.owner, root: msg.fragRoot}
		if theirs == n.frag {
			usable = false
		} else if n.phase == Multi && msg.owner != n.frag.owner {
			usable = false
		}
	}
	if usable {
		rep := edgeReport{u: n.id, v: from, du: n.degree(), dv: msg.deg, vroot: msg.fragRoot}
		if !n.hasReport || rep.better(n.report) {
			n.hasReport = true
			n.report = rep
			n.reportVia = n.id
		}
	}
	n.resolveNeighbor(ctx)
}

// onBFSBack merges a child's aggregate. At a fragment member it folds into
// the member's own aggregate; at an owner it feeds the Choose step.
func (n *Node) onBFSBack(ctx sim.Context, from sim.NodeID, msg mBFSBack) {
	if n.isOwner {
		n.ownerPending--
		n.improved = n.improved || msg.improved
		if msg.hasReport {
			if !n.ownerHasBest || msg.report.better(n.ownerBest) {
				n.ownerHasBest = true
				n.ownerBest = msg.report
				n.ownerArrival = from
			}
		}
		if n.ownerPending == 0 {
			n.ownerComplete(ctx)
		}
		return
	}
	n.improved = n.improved || msg.improved
	if msg.hasReport {
		if !n.hasReport || msg.report.better(n.report) {
			n.hasReport = true
			n.report = msg.report
			n.reportVia = from
		}
	}
	n.resolveNeighbor(ctx)
}

// resolveNeighbor decrements the member's outstanding-answer count; when all
// neighbours are accounted for the member reports to its parent ("when a
// node x received an answer from all its neighbours").
func (n *Node) resolveNeighbor(ctx sim.Context) {
	n.bfsPending--
	if n.bfsPending > 0 {
		return
	}
	if n.bfsPending < 0 {
		panic(fmt.Sprintf("mdst: node %d over-resolved its BFS wave", n.id))
	}
	n.sendAggregate(ctx)
}

func (n *Node) sendAggregate(ctx sim.Context) {
	if !n.hasParent {
		panic(fmt.Sprintf("mdst: fragment member %d has no parent", n.id))
	}
	ctx.Send(n.parent, newBFSBack(n.round, n.hasReport, n.report, n.improved))
}

// ownerComplete runs the paper's Choose step once every fragment answered:
// apply the best exchange if one exists, otherwise conclude the round for
// this owner.
func (n *Node) ownerComplete(ctx sim.Context) {
	if n.ownerHasBest {
		// "The child which sent the best outgoing edge will be suppressed
		// from the children set" — the cut half of the exchange.
		n.removeChild(n.ownerArrival)
		n.ownerSwapped = true
		n.swaps++
		n.awaitingDone = true
		ctx.Send(n.ownerArrival, newUpdate(n.round, n.ownerBest.u, n.ownerBest.v, true))
		return
	}
	if n.actingRoot && n.phase == Single {
		// "If there is no more outgoing edge ... the maximum degree cannot
		// be (locally) improved": remember it and let SearchDegree pick
		// the next candidate (or terminate).
		n.exhausted = true
	}
	n.finishOwner(ctx)
}

// finishOwner concludes the round at this owner after its exchange (if any)
// was acknowledged.
func (n *Node) finishOwner(ctx sim.Context) {
	if !n.actingRoot {
		// Sub-owner (Multi): report upward; no outgoing edge is forwarded
		// (see DESIGN.md deviation 4), only the improvement flag.
		ctx.Send(n.parent, newBFSBack(n.round, false, edgeReport{}, n.ownerSwapped || n.improved))
		return
	}
	// Acting root: decide what the next round is.
	switch n.phase {
	case Single:
		n.startRound(ctx, n.round+1, n.ownerSwapped)
	case Multi:
		if n.ownerSwapped || n.improved {
			n.startRound(ctx, n.round+1, true)
			return
		}
		if n.mode == Hybrid {
			// Multi rounds stalled: continue with Single rounds until
			// full local optimality.
			n.phase = Single
			n.startRound(ctx, n.round+1, false)
			return
		}
		// No exchange anywhere: locally optimal tree.
		n.terminate(ctx)
	}
}
