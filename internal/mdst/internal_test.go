package mdst

import (
	"testing"
	"testing/quick"

	"mdegst/internal/sim"
)

// White-box tests of the protocol's pure pieces: the SearchDegree aggregate,
// the edge-report total order and the fragment-identity order. These are the
// three places where determinism and delivery-order independence are decided.

func TestMergeAggLattice(t *testing.T) {
	cases := []struct {
		a, b, want degAgg
	}{
		{degAgg{5, 3}, degAgg{4, 1}, degAgg{5, 3}},           // higher degree wins
		{degAgg{4, 1}, degAgg{5, 3}, degAgg{5, 3}},           // commutes
		{degAgg{5, 7}, degAgg{5, 3}, degAgg{5, 3}},           // same degree: min id
		{degAgg{5, noCand}, degAgg{5, 3}, degAgg{5, 3}},      // candidate beats none
		{degAgg{5, 3}, degAgg{5, noCand}, degAgg{5, 3}},      // either side
		{degAgg{5, noCand}, degAgg{4, 2}, degAgg{5, noCand}}, // degree still dominates
		{degAgg{3, noCand}, degAgg{3, noCand}, degAgg{3, noCand}},
	}
	for _, tc := range cases {
		if got := mergeAgg(tc.a, tc.b); got != tc.want {
			t.Errorf("merge(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// Property: mergeAgg is commutative and associative — the requirement for
// the convergecast to be delivery-order independent.
func TestQuickMergeAggAlgebra(t *testing.T) {
	gen := func(k uint8, cand int16) degAgg {
		c := noCand
		if cand >= 0 {
			c = sim.NodeID(cand)
		}
		return degAgg{k: int(k % 16), cand: c}
	}
	f := func(k1, k2, k3 uint8, c1, c2, c3 int16) bool {
		a, b, c := gen(k1, c1), gen(k2, c2), gen(k3, c3)
		if mergeAgg(a, b) != mergeAgg(b, a) {
			return false
		}
		return mergeAgg(mergeAgg(a, b), c) == mergeAgg(a, mergeAgg(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEdgeReportOrder(t *testing.T) {
	low := edgeReport{u: 1, v: 2, du: 2, dv: 2}
	highDeg := edgeReport{u: 1, v: 2, du: 2, dv: 5}
	if !low.better(highDeg) {
		t.Error("smaller max endpoint degree must win (the paper's Choose rule)")
	}
	tieSmallerIDs := edgeReport{u: 0, v: 9, du: 2, dv: 2}
	if !tieSmallerIDs.better(low) {
		t.Error("equal degrees: smaller min endpoint id must win")
	}
	if low.better(low) {
		t.Error("irreflexive")
	}
	// Symmetric endpoints must not affect the key.
	a := edgeReport{u: 3, v: 7, du: 4, dv: 2}
	b := edgeReport{u: 7, v: 3, du: 2, dv: 4}
	if a.key() != b.key() {
		t.Error("key must be endpoint-order invariant")
	}
}

// Property: better is a strict total order on distinct keys.
func TestQuickEdgeReportTotalOrder(t *testing.T) {
	gen := func(u, v uint8, du, dv uint8) edgeReport {
		return edgeReport{u: sim.NodeID(u), v: sim.NodeID(v) + 256, du: int(du % 8), dv: int(dv % 8)}
	}
	f := func(x1, x2, x3, x4, y1, y2, y3, y4 uint8) bool {
		a, b := gen(x1, x2, x3, x4), gen(y1, y2, y3, y4)
		if a.key() == b.key() {
			return !a.better(b) && !b.better(a)
		}
		return a.better(b) != b.better(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFragIDOrderOwnerMajor(t *testing.T) {
	// The paper's "(r,r') < (p,p')" comparison: owner id dominates.
	a := fragID{owner: 1, root: 9}
	b := fragID{owner: 2, root: 0}
	if !a.less(b) || b.less(a) {
		t.Error("owner must dominate the comparison")
	}
	c := fragID{owner: 1, root: 3}
	if !c.less(a) || a.less(c) {
		t.Error("equal owners: fragment root decides")
	}
	if a.less(a) {
		t.Error("irreflexive")
	}
}

func TestModeStrings(t *testing.T) {
	if Single.String() != "single" || Multi.String() != "multi" || Hybrid.String() != "hybrid" {
		t.Error("mode names wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Errorf("unknown mode renders %q", Mode(42).String())
	}
	if Single.initialPhase() != Single || Multi.initialPhase() != Multi || Hybrid.initialPhase() != Multi {
		t.Error("initial phases wrong")
	}
}

func TestStopDegree(t *testing.T) {
	n := &Node{}
	if n.stopDegree() != 2 {
		t.Errorf("default stop = %d", n.stopDegree())
	}
	n.target = 1
	if n.stopDegree() != 2 {
		t.Error("targets below 2 behave as unbounded")
	}
	n.target = 7
	if n.stopDegree() != 7 {
		t.Errorf("stop = %d, want 7", n.stopDegree())
	}
}

func TestChildListMaintenance(t *testing.T) {
	n := &Node{}
	for _, c := range []sim.NodeID{5, 1, 9, 3} {
		n.addChild(c)
	}
	want := []sim.NodeID{1, 3, 5, 9}
	for i, c := range n.children {
		if c != want[i] {
			t.Fatalf("children %v, want %v", n.children, want)
		}
	}
	n.removeChild(5)
	if len(n.children) != 3 || n.children[2] != 9 {
		t.Fatalf("after remove: %v", n.children)
	}
	defer func() {
		if recover() == nil {
			t.Error("removing a missing child must panic (protocol invariant)")
		}
	}()
	n.removeChild(42)
}

func TestMessageWords(t *testing.T) {
	// The bit-complexity accounting depends on these sizes; pin the encoded
	// records (kind tag + payload words, derived by WireMsg.Words).
	cases := []struct {
		m    sim.WireMsg
		want int
	}{
		{newStart(1, false, Single), 4},
		{newDeg(1, 3, 2), 4},
		{newMove(1, 3, 2), 4},
		{newCut(1, 3, 2), 4},
		{newBFS(1, 3, 2, 4), 5},
		{newCousin(1, 3, 2, 4), 5},
		{newBFSBack(1, false, edgeReport{}, true), 3},
		{newBFSBack(1, true, edgeReport{u: 1, v: 2, du: 3, dv: 4, vroot: 5}, true), 9},
		{newUpdate(1, 2, 3, true), 5},
		{newChild(1), 2},
		{newRoundDone(1), 2},
		{newTerm(1), 2},
	}
	for _, tc := range cases {
		if got := tc.m.Words(); got != tc.want {
			t.Errorf("%s words = %d, want %d", tc.m.Kind(), got, tc.want)
		}
		if err := tc.m.Validate(); err != nil {
			t.Errorf("%s: %v", tc.m.Kind(), err)
		}
	}
}

// TestMessageRoundTrip pins the decode layer against the constructors:
// every record decodes back to the field values it was built from.
func TestMessageRoundTrip(t *testing.T) {
	rep := edgeReport{u: 7, v: 9, du: 3, dv: 2, vroot: 11}
	if got := decStart(newStart(4, true, Multi)); got != (mStart{round: 4, clear: true, phase: Multi}) {
		t.Errorf("start round-trip: %+v", got)
	}
	if got := decDeg(newDeg(4, 6, noCand)); got != (mDeg{round: 4, k: 6, cand: noCand}) {
		t.Errorf("deg round-trip: %+v", got)
	}
	if got := decMove(newMove(4, 6, 9)); got != (mMove{round: 4, k: 6, target: 9}) {
		t.Errorf("move round-trip: %+v", got)
	}
	if got := decCut(newCut(4, 6, 2)); got != (mCut{round: 4, k: 6, owner: 2}) {
		t.Errorf("cut round-trip: %+v", got)
	}
	if got := decBFS(newBFS(4, 6, 2, 3)); got != (mBFS{round: 4, k: 6, owner: 2, fragRoot: 3}) {
		t.Errorf("bfs round-trip: %+v", got)
	}
	if got := decCousin(newCousin(4, 6, 2, 3)); got != (mCousin{round: 4, deg: 6, owner: 2, fragRoot: 3}) {
		t.Errorf("cousin round-trip: %+v", got)
	}
	if got := decBFSBack(newBFSBack(4, true, rep, true)); got != (mBFSBack{round: 4, hasReport: true, report: rep, improved: true}) {
		t.Errorf("bfsback long round-trip: %+v", got)
	}
	if got := decBFSBack(newBFSBack(4, false, edgeReport{}, true)); got != (mBFSBack{round: 4, improved: true}) {
		t.Errorf("bfsback short round-trip: %+v", got)
	}
	if got := decUpdate(newUpdate(4, 7, 9, true)); got != (mUpdate{round: 4, u: 7, v: 9, first: true}) {
		t.Errorf("update round-trip: %+v", got)
	}
}
