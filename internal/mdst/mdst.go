// Package mdst implements the paper's contribution: the first distributed
// approximation algorithm for the Minimum Degree Spanning Tree problem on
// general graphs (Blin & Butelle, IPPS 2003 / IJFCS 2004).
//
// Starting from an arbitrary rooted spanning tree, the protocol runs rounds
// of
//
//	SearchDegree -> MoveRoot -> Cut -> BFS wave -> Choose/Update/Child
//
// until no exchange can lower the maximum degree (a Locally Optimal Tree)
// or the tree is a chain (k = 2). Each round costs O(m) messages and O(n)
// time; with k the initial and k* the final degree the paper bounds the
// whole run by O((k-k*)·m) messages and O((k-k*)·n) time.
//
// Two modes are provided: Single (the base algorithm, one exchange per
// round) and Multi (paper §3.2.6, every maximum-degree node exchanges
// concurrently). See DESIGN.md for the precise semantics chosen where the
// paper is underspecified.
package mdst

import (
	"fmt"

	"mdegst/internal/graph"
	"mdegst/internal/sim"
	"mdegst/internal/tree"
)

// Result summarises one improvement run.
type Result struct {
	// Tree is the final spanning tree (validated against the graph).
	Tree *tree.Tree
	// Report carries the message/time accounting of the run.
	Report *sim.Report
	// Rounds is the number of protocol rounds executed, including the
	// final no-improvement (or k<=2) round.
	Rounds int
	// Swaps is the total number of edge exchanges applied.
	Swaps int
	// InitialDegree and FinalDegree are the maximum tree degrees before
	// and after improvement.
	InitialDegree int
	FinalDegree   int
}

// FactoryFromTree builds the protocol factory for an initial tree.
func FactoryFromTree(mode Mode, target int, t *tree.Tree) sim.Factory {
	parent := make(map[sim.NodeID]sim.NodeID, t.N())
	children := make(map[sim.NodeID][]sim.NodeID, t.N())
	for v, p := range t.Parent {
		parent[v] = p
	}
	parent[t.Root] = t.Root
	for v, ch := range t.Children {
		children[v] = ch
	}
	return NewFactory(mode, target, t.Root, parent, children)
}

// Run executes the improvement protocol on the engine, starting from the
// given spanning tree of g, and returns the validated result.
func Run(eng sim.Engine, g *graph.Graph, initial *tree.Tree, mode Mode) (*Result, error) {
	return RunTarget(eng, g, initial, mode, 0)
}

// RunTarget is Run with a degree target: the protocol stops as soon as the
// maximum degree is at most target (the paper's "cannot exceed a given
// value k" variant). A target of 0 improves to local optimality.
func RunTarget(eng sim.Engine, g *graph.Graph, initial *tree.Tree, mode Mode, target int) (*Result, error) {
	return RunTargetSnapshot(eng, g.Compile(), initial, mode, target)
}

// RunSnapshot is Run over a pre-compiled snapshot: the harness compiles each
// workload once and shares the snapshot across trials and engines.
func RunSnapshot(eng sim.Engine, c *graph.CSR, initial *tree.Tree, mode Mode) (*Result, error) {
	return RunTargetSnapshot(eng, c, initial, mode, 0)
}

// RunTargetSnapshot is RunTarget over a pre-compiled snapshot.
func RunTargetSnapshot(eng sim.Engine, c *graph.CSR, initial *tree.Tree, mode Mode, target int) (*Result, error) {
	g := c.Source()
	if err := initial.Validate(g); err != nil {
		return nil, fmt.Errorf("mdst: initial tree invalid: %w", err)
	}
	protos, rep, err := sim.RunCompiled(eng, c, FactoryFromTree(mode, target, initial))
	if err != nil {
		return nil, err
	}
	return Extract(g, initial, protos, rep)
}

// ResumeTargetSnapshot continues a checkpointed improvement run: the
// factory is rebuilt from the same initial tree and mode, the engine
// restores the frozen states and pending messages, and the completed
// Result — tree, report, rounds, swaps — is identical to the uninterrupted
// run's.
func ResumeTargetSnapshot(eng sim.ResumableEngine, c *graph.CSR, initial *tree.Tree, mode Mode, target int, ck *sim.Checkpoint) (*Result, error) {
	g := c.Source()
	if err := initial.Validate(g); err != nil {
		return nil, fmt.Errorf("mdst: initial tree invalid: %w", err)
	}
	protos, rep, err := eng.ResumeSnapshot(c, FactoryFromTree(mode, target, initial), ck)
	if err != nil {
		return nil, err
	}
	return Extract(g, initial, protos, rep)
}

// Extract assembles a Result from final protocol states.
func Extract(g *graph.Graph, initial *tree.Tree, protos map[sim.NodeID]sim.Protocol, rep *sim.Report) (*Result, error) {
	var root sim.NodeID
	roots := 0
	parent := make(map[graph.NodeID]graph.NodeID, len(protos))
	rounds, swaps := 0, 0
	for id, p := range protos {
		node, ok := p.(*Node)
		if !ok {
			return nil, fmt.Errorf("mdst: node %d runs %T, not the mdst protocol", id, p)
		}
		if !node.Finished() {
			return nil, fmt.Errorf("mdst: node %d did not learn termination", id)
		}
		par, _, isRoot := node.TreeInfo()
		if isRoot {
			root = id
			roots++
			parent[id] = id
		} else {
			parent[id] = par
		}
		if node.Round() > rounds {
			rounds = node.Round()
		}
		swaps += node.Swaps()
	}
	if roots != 1 {
		return nil, fmt.Errorf("mdst: %d roots, want exactly 1", roots)
	}
	t, err := tree.FromParentMap(root, parent)
	if err != nil {
		return nil, err
	}
	if err := t.Validate(g); err != nil {
		return nil, fmt.Errorf("mdst: final tree invalid: %w", err)
	}
	initDeg, _ := initial.MaxDegree()
	finalDeg, _ := t.MaxDegree()
	return &Result{
		Tree:          t,
		Report:        rep,
		Rounds:        rounds,
		Swaps:         swaps,
		InitialDegree: initDeg,
		FinalDegree:   finalDeg,
	}, nil
}
