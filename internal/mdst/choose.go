package mdst

import (
	"fmt"

	"mdegst/internal/sim"
)

// Exchange application: Update travels the via chain reversing the path,
// Child performs the reattachment, RoundDone tells the owner (paper §3.2.5).

func (n *Node) onUpdate(ctx sim.Context, from sim.NodeID, msg mUpdate) {
	// On every hop after the first, the sender (our former parent) has
	// reversed its pointer and is now our child; on the first hop the
	// sender is the owner that just cut us.
	if n.id == msg.u {
		// "If e is an outgoing edge of x: the node at the next extremity
		// of e becomes the parent of x."
		if !msg.first {
			n.addChild(from)
		}
		n.parent = msg.v
		n.hasParent = true
		ctx.Send(msg.v, newChild(n.round))
		return
	}
	// "Else: the identity found in its via variable becomes its parent and
	// the same identity is suppressed from the set of its children."
	if !n.hasReport || n.report.u != msg.u || n.report.v != msg.v {
		panic(fmt.Sprintf("mdst: node %d got update for edge (%d,%d) it did not report", n.id, msg.u, msg.v))
	}
	via := n.reportVia
	if via == n.id {
		panic(fmt.Sprintf("mdst: node %d is not %d yet has a self via", n.id, msg.u))
	}
	if !msg.first {
		n.addChild(from)
	}
	n.removeChild(via)
	n.parent = via
	n.hasParent = true
	ctx.Send(via, newUpdate(n.round, msg.u, msg.v, false))
}

func (n *Node) onChild(ctx sim.Context, from sim.NodeID, msg mChild) {
	// "Upon receipt of the child message from x, the node y adds x to its
	// children set." The round is complete; tell the waiting owner.
	n.addChild(from)
	if !n.hasParent {
		panic(fmt.Sprintf("mdst: reattachment endpoint %d has no parent", n.id))
	}
	ctx.Send(n.parent, newRoundDone(n.round))
}

func (n *Node) onRoundDone(ctx sim.Context, from sim.NodeID, msg mRoundDone) {
	if n.isOwner && n.awaitingDone {
		n.awaitingDone = false
		n.finishOwner(ctx)
		return
	}
	if !n.hasParent {
		panic(fmt.Sprintf("mdst: root %d received round-done it was not awaiting", n.id))
	}
	ctx.Send(n.parent, newRoundDone(n.round))
}
