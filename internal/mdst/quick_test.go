package mdst_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mdegst/internal/fr"
	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
)

// Property-based end-to-end checks over random graphs, random initial
// spanning trees and random targets: the distributed protocol must always
// (1) terminate with a valid spanning tree, (2) never raise the degree,
// (3) match its sequential twin exactly, and (4) respect the per-round
// message budget.

func TestQuickDistributedEqualsTwin(t *testing.T) {
	f := func(seed int64, modeRaw, targetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(24)
		g := graph.Gnm(n, n-1+rng.Intn(2*n), seed)
		t0, err := spanning.RandomST(g, seed+1)
		if err != nil {
			return false
		}
		mode := []mdst.Mode{mdst.Single, mdst.Multi, mdst.Hybrid}[modeRaw%3]
		target := int(targetRaw % 6)
		res, err := mdst.RunTarget(unitEngine(), g, t0, mode, target)
		if err != nil {
			return false
		}
		if res.Tree.Validate(g) != nil || res.FinalDegree > res.InitialDegree {
			return false
		}
		want, stats, err := fr.TwinTarget(g, t0, mode, target)
		if err != nil {
			return false
		}
		return res.Tree.Equal(want) && res.Rounds == stats.Rounds && res.Swaps == stats.Swaps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickPerRoundMessageBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		g := graph.Gnm(n, n-1+rng.Intn(3*n), seed)
		t0, err := spanning.StarTree(g)
		if err != nil {
			return false
		}
		res, err := mdst.Run(unitEngine(), g, t0, mdst.Multi)
		if err != nil {
			return false
		}
		// Per round: start+deg+move+cut+rounddone+update+child+term is
		// O(n); bfs+cousin+bfsback is O(m). Generous constant: 6n + 5m.
		budget := int64(res.Rounds) * int64(6*g.N()+5*g.M())
		return res.Report.Messages <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickAsyncAdversary runs random graphs under seeded random delays,
// with and without FIFO, and demands the unit-delay result.
func TestQuickAsyncAdversary(t *testing.T) {
	f := func(seed int64, fifo bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(18)
		g := graph.Gnm(n, n-1+rng.Intn(2*n), seed)
		t0, err := spanning.StarTree(g)
		if err != nil {
			return false
		}
		ref, err := mdst.Run(unitEngine(), g, t0, mdst.Hybrid)
		if err != nil {
			return false
		}
		adv := &sim.EventEngine{Delay: sim.UniformDelay(0.01), Seed: seed, FIFO: fifo}
		res, err := mdst.Run(adv, g, t0, mdst.Hybrid)
		if err != nil {
			return false
		}
		return res.Tree.Equal(ref.Tree) && res.Report.Messages == ref.Report.Messages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
