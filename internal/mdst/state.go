package mdst

import (
	"fmt"

	"mdegst/internal/sim"
)

// StateCodec implementation: the improvement protocol supports barrier
// checkpoint/resume (DESIGN.md §8). The encoded state is everything Recv
// can have mutated — the tree view, the cross-round flags, the per-round
// search/fragment/owner machinery and the deferred-message list. The
// factory-construction inputs (identity, mode, target) are not encoded:
// Resume rebuilds nodes through the same Factory before decoding.
//
// Encode and Decode walk the fields in one fixed order; the decoder's
// sticky error plus the engine's trailing-bytes check catch any drift
// between the two.

// EncodeState implements sim.StateCodec.
func (n *Node) EncodeState(e *sim.StateEncoder) {
	e.Int(int64(n.phase))
	e.ID(n.parent)
	e.Bool(n.hasParent)
	e.IDs(n.children)
	e.Int(int64(n.round))
	e.Bool(n.exhausted)
	e.Bool(n.terminated)
	e.Int(int64(n.swaps))

	e.Int(int64(n.searchPending))
	e.Int(int64(n.agg.k))
	e.ID(n.agg.cand)
	e.ID(n.via)
	e.Int(int64(n.kAll))

	e.Bool(n.fragKnown)
	e.ID(n.frag.owner)
	e.ID(n.frag.root)
	e.Int(int64(n.bfsPending))
	e.Bool(n.hasReport)
	encodeEdgeReport(e, n.report)
	e.ID(n.reportVia)
	e.Bool(n.improved)

	e.Bool(n.isOwner)
	e.Bool(n.actingRoot)
	e.Int(int64(n.ownerPending))
	e.Bool(n.ownerHasBest)
	encodeEdgeReport(e, n.ownerBest)
	e.ID(n.ownerArrival)
	e.Bool(n.ownerSwapped)
	e.Bool(n.awaitingDone)

	e.Int(int64(len(n.deferred)))
	for _, d := range n.deferred {
		e.ID(d.from)
		e.Msg(d.msg)
	}
}

// DecodeState implements sim.StateCodec.
func (n *Node) DecodeState(d *sim.StateDecoder) error {
	n.phase = Mode(d.Int())
	n.parent = d.ID()
	n.hasParent = d.Bool()
	n.children = d.IDs()
	n.round = int(d.Int())
	n.exhausted = d.Bool()
	n.terminated = d.Bool()
	n.swaps = int(d.Int())

	n.searchPending = int(d.Int())
	n.agg.k = int(d.Int())
	n.agg.cand = d.ID()
	n.via = d.ID()
	n.kAll = int(d.Int())

	n.fragKnown = d.Bool()
	n.frag.owner = d.ID()
	n.frag.root = d.ID()
	n.bfsPending = int(d.Int())
	n.hasReport = d.Bool()
	n.report = decodeEdgeReport(d)
	n.reportVia = d.ID()
	n.improved = d.Bool()

	n.isOwner = d.Bool()
	n.actingRoot = d.Bool()
	n.ownerPending = int(d.Int())
	n.ownerHasBest = d.Bool()
	n.ownerBest = decodeEdgeReport(d)
	n.ownerArrival = d.ID()
	n.ownerSwapped = d.Bool()
	n.awaitingDone = d.Bool()

	nd := d.Int()
	if nd < 0 || nd > 1<<20 {
		return fmt.Errorf("mdst: implausible deferred count %d", nd)
	}
	n.deferred = n.deferred[:0]
	for i := int64(0); i < nd; i++ {
		from := d.ID()
		msg := d.Msg()
		if d.Err() != nil {
			return d.Err()
		}
		n.deferred = append(n.deferred, deferredMsg{from: from, msg: msg})
	}
	return d.Err()
}

func encodeEdgeReport(e *sim.StateEncoder, r edgeReport) {
	e.ID(r.u)
	e.ID(r.v)
	e.Int(int64(r.du))
	e.Int(int64(r.dv))
	e.ID(r.vroot)
}

func decodeEdgeReport(d *sim.StateDecoder) edgeReport {
	return edgeReport{u: d.ID(), v: d.ID(), du: int(d.Int()), dv: int(d.Int()), vroot: d.ID()}
}

var _ sim.StateCodec = (*Node)(nil)
