package mdst

import (
	"fmt"

	"mdegst/internal/sim"
)

// Mode selects how many maximum-degree nodes act per round.
type Mode int

const (
	// Single is the paper's base algorithm (§3.1–3.2.5): each round the
	// root moves to the minimum-identity maximum-degree node, which alone
	// cuts its children and applies at most one exchange. Nodes that find
	// no improvement are marked exhausted until the next exchange anywhere
	// in the tree; the algorithm stops when every maximum-degree node is
	// exhausted.
	Single Mode = iota
	// Multi adds §3.2.6: every maximum-degree node reached by the wave
	// behaves like a root, cutting its own children and applying an
	// exchange between two of its own fragments concurrently. The round
	// with no exchange anywhere terminates the algorithm. Because owners
	// only use edges between their own fragments (the verifiably safe
	// reading of the paper; see DESIGN.md deviation 4), Multi can stop at
	// a weaker optimum than Single.
	Multi
	// Hybrid runs Multi rounds until they stall, then switches to Single
	// rounds until full local optimality: Multi's concurrent progress with
	// Single's terminal guarantee.
	Hybrid
)

func (m Mode) String() string {
	switch m {
	case Single:
		return "single"
	case Multi:
		return "multi"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// initialPhase returns the phase the first round runs in.
func (m Mode) initialPhase() Mode {
	if m == Single {
		return Single
	}
	return Multi
}

// degAgg is the SearchDegree aggregate: maximum tree degree seen and the
// minimum identity of an eligible node attaining it.
type degAgg struct {
	k    int
	cand sim.NodeID
}

func mergeAgg(a, b degAgg) degAgg {
	switch {
	case a.k > b.k:
		return a
	case b.k > a.k:
		return b
	case a.cand == noCand:
		return degAgg{k: a.k, cand: b.cand}
	case b.cand == noCand || a.cand < b.cand:
		return a
	default:
		return b
	}
}

type deferredMsg struct {
	from sim.NodeID
	msg  sim.WireMsg
}

// Node is one processor of the distributed MDegST improvement protocol.
// Its persistent state is the local tree view (parent, children) plus the
// exhausted flag; everything else is per-round.
type Node struct {
	id     sim.NodeID
	mode   Mode
	phase  Mode // Single or Multi; Hybrid switches Multi -> Single
	target int  // stop once the maximum degree is <= target (0: improve fully)

	// Tree view.
	parent    sim.NodeID
	hasParent bool
	children  []sim.NodeID

	// Cross-round state.
	round      int
	exhausted  bool
	terminated bool
	swaps      int // exchanges this node applied as an owner

	// SearchDegree state.
	searchPending int
	agg           degAgg
	via           sim.NodeID // neighbour (or self) that contributed agg
	kAll          int        // round's maximum degree, known after search/cut

	// Fragment-member state.
	fragKnown  bool
	frag       fragID
	bfsPending int
	hasReport  bool
	report     edgeReport
	reportVia  sim.NodeID // child (or self) whose subtree holds report
	improved   bool       // an exchange happened in this subtree (Multi)

	// Owner state (acting root or, in Multi mode, any degree-k node).
	isOwner      bool
	actingRoot   bool
	ownerPending int
	ownerHasBest bool
	ownerBest    edgeReport
	ownerArrival sim.NodeID // child whose subtree reported ownerBest
	ownerSwapped bool
	awaitingDone bool

	deferred []deferredMsg
}

// NewFactory returns a sim.Factory for the improvement protocol starting
// from the given initial rooted spanning tree view. The maps give, for every
// node, its parent (roots map to themselves) and sorted children. A positive
// target stops the algorithm as soon as the maximum degree reaches it — the
// paper's "cannot exceed a given value k" variant; zero improves to local
// optimality.
func NewFactory(mode Mode, target int, root sim.NodeID, parent map[sim.NodeID]sim.NodeID, children map[sim.NodeID][]sim.NodeID) sim.Factory {
	return func(id sim.NodeID, _ []sim.NodeID) sim.Protocol {
		n := &Node{
			id:       id,
			mode:     mode,
			phase:    mode.initialPhase(),
			target:   target,
			children: append([]sim.NodeID(nil), children[id]...),
		}
		if id != root {
			n.parent = parent[id]
			n.hasParent = true
		}
		return n
	}
}

// stopDegree is the maximum degree at which the algorithm halts: a chain
// (k=2) can never improve, and a caller-given target may stop earlier.
func (n *Node) stopDegree() int {
	if n.target > 2 {
		return n.target
	}
	return 2
}

// degree returns this node's current tree degree.
func (n *Node) degree() int {
	d := len(n.children)
	if n.hasParent {
		d++
	}
	return d
}

// Init starts round 1 at the initial root; all other nodes are event-driven.
func (n *Node) Init(ctx sim.Context) {
	if !n.hasParent {
		n.startRound(ctx, 1, false)
	}
}

// Recv dispatches one message, deferring those that arrive ahead of this
// node's round or before its fragment identity is known (the paper's
// "the answer has to be delayed until x learns its fragment identity").
// Messages are flat wire records: deferring one is a value copy, and a
// processed one simply goes out of scope.
func (n *Node) Recv(ctx sim.Context, from sim.NodeID, m sim.WireMsg) {
	if !n.process(ctx, from, m) {
		n.deferred = append(n.deferred, deferredMsg{from: from, msg: m})
		return
	}
	n.retryDeferred(ctx)
}

func (n *Node) retryDeferred(ctx sim.Context) {
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(n.deferred); i++ {
			d := n.deferred[i]
			if n.process(ctx, d.from, d.msg) {
				n.deferred = append(n.deferred[:i], n.deferred[i+1:]...)
				progress = true
				i--
			}
		}
	}
}

// process handles one message, returning false to defer it. The wire
// record decodes to its typed view here, at the protocol boundary; the
// handlers below work on the structs.
func (n *Node) process(ctx sim.Context, from sim.NodeID, m sim.WireMsg) bool {
	if n.terminated {
		panic(fmt.Sprintf("mdst: node %d received %s after termination", n.id, m.Kind()))
	}
	round := int(m.W[0]) // every mdst record is Rounded: word 0 is the round
	if round > n.round {
		if m.Op != opStart {
			return false // ahead of our round: wait for mStart (non-FIFO only)
		}
	}
	if round < n.round {
		panic(fmt.Sprintf("mdst: node %d in round %d received stale %s of round %d", n.id, n.round, m.Kind(), round))
	}
	switch m.Op {
	case opStart:
		n.onStart(ctx, from, decStart(m))
	case opDeg:
		n.onDeg(ctx, from, decDeg(m))
	case opMove:
		n.onMove(ctx, from, decMove(m))
	case opCut:
		n.onCut(ctx, from, decCut(m))
	case opBFS:
		return n.onBFS(ctx, from, decBFS(m))
	case opCousin:
		n.onCousin(ctx, from, decCousin(m))
	case opBFSBack:
		n.onBFSBack(ctx, from, decBFSBack(m))
	case opUpdate:
		n.onUpdate(ctx, from, decUpdate(m))
	case opChild:
		n.onChild(ctx, from, mChild{round: round})
	case opRoundDone:
		n.onRoundDone(ctx, from, mRoundDone{round: round})
	case opTerm:
		n.onTerm(ctx, mTerm{round: round})
	default:
		panic(fmt.Sprintf("mdst: unexpected message %s", m.Kind()))
	}
	return true
}

// resetRound clears all per-round state.
func (n *Node) resetRound() {
	n.searchPending = 0
	n.agg = degAgg{}
	n.via = n.id
	n.kAll = 0
	n.fragKnown = false
	n.frag = fragID{}
	n.bfsPending = 0
	n.hasReport = false
	n.report = edgeReport{}
	n.reportVia = n.id
	n.improved = false
	n.isOwner = false
	n.actingRoot = false
	n.ownerPending = 0
	n.ownerHasBest = false
	n.ownerBest = edgeReport{}
	n.ownerArrival = 0
	n.ownerSwapped = false
	n.awaitingDone = false
}

// ownContribution is this node's SearchDegree entry: its degree and, if
// eligible to act, its identity. Exhaustion only applies in Single phase;
// Multi rounds detect their own stall through the improvement flags.
func (n *Node) ownContribution() degAgg {
	cand := n.id
	if n.phase == Single && n.exhausted {
		cand = noCand
	}
	return degAgg{k: n.degree(), cand: cand}
}

// removeChild drops c from the children list.
func (n *Node) removeChild(c sim.NodeID) {
	for i, x := range n.children {
		if x == c {
			n.children = append(n.children[:i], n.children[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("mdst: node %d has no child %d", n.id, c))
}

// addChild inserts c keeping the list sorted.
func (n *Node) addChild(c sim.NodeID) {
	i := 0
	for i < len(n.children) && n.children[i] < c {
		i++
	}
	n.children = append(n.children, 0)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
}

// TreeInfo exposes the final tree (spanning.TreeNode-compatible).
func (n *Node) TreeInfo() (sim.NodeID, []sim.NodeID, bool) {
	return n.parent, n.children, !n.hasParent
}

// Finished reports termination by process.
func (n *Node) Finished() bool { return n.terminated }

// Round returns the last round this node participated in.
func (n *Node) Round() int { return n.round }

// Swaps returns the number of exchanges this node applied as an owner.
func (n *Node) Swaps() int { return n.swaps }
