package mdst_test

import (
	"fmt"
	"testing"

	"mdegst/internal/graph"
	"mdegst/internal/mdst"
	"mdegst/internal/sim"
	"mdegst/internal/spanning"
)

// BenchmarkImprovementRound isolates the per-round protocol cost: one round
// on a chain-optimal graph (k=2 stops immediately after SearchDegree).
func BenchmarkImprovementRound(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		g := graph.Ring(n)
		t0, err := spanning.BFSTree(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			eng := &sim.EventEngine{Delay: sim.UnitDelay}
			for i := 0; i < b.N; i++ {
				if _, err := mdst.Run(eng, g, t0, mdst.Single); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFullImprovement measures complete runs from the worst initial
// tree per mode.
func BenchmarkFullImprovement(b *testing.B) {
	g := graph.Gnm(128, 512, 7)
	t0, err := spanning.StarTree(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []mdst.Mode{mdst.Single, mdst.Multi, mdst.Hybrid} {
		b.Run(mode.String(), func(b *testing.B) {
			eng := &sim.EventEngine{Delay: sim.UnitDelay}
			var msgs int64
			for i := 0; i < b.N; i++ {
				res, err := mdst.Run(eng, g, t0, mode)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Report.Messages
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}
