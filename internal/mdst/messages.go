package mdst

import (
	"sync"

	"mdegst/internal/sim"
)

// Message vocabulary of the improvement protocol. Every message carries its
// round number so the engines can attribute counts per round and the nodes
// can defer messages that arrive ahead of their local round (needed only
// under non-FIFO delivery; under the paper's FIFO channels the round tags
// act as assertions).
//
// Words counts the identities/integers carried including the kind tag,
// implementing the paper's "at most four numbers or identities by message"
// bit-complexity accounting (our BFSBack aggregate is larger; see DESIGN.md
// deviation notes and experiment E6).
//
// Messages are sent as pooled pointers: converting a value struct to the
// sim.Message interface heap-allocates, and with O((k-k*)·m) messages per
// run that boxing dominated the whole pipeline's allocation profile (~99%
// of allocs/op on the BENCH_baseline engine workload). Each message is
// delivered to exactly one receiver, which recycles it after its handler
// ran (see Node.Recv); a message deferred by the paper's "delay until the
// fragment identity is known" rule is simply recycled later. The pools are
// per-kind sync.Pools, so the scheme stays safe under the goroutine engine.

// noCand marks the absence of an improvement candidate in the SearchDegree
// convergecast (all maximum-degree nodes exhausted).
const noCand sim.NodeID = -1

// mStart begins a round: broadcast from the acting root down the tree.
// clear resets the "exhausted" flags after a successful exchange; phase is
// the round's mode (Single or Multi — Hybrid runs switch mid-algorithm).
type mStart struct {
	round int
	clear bool
	phase Mode
}

// mDeg is the SearchDegree convergecast: the maximum tree degree in the
// sender's subtree and the minimum identity of an eligible node attaining
// it (noCand if none).
type mDeg struct {
	round int
	k     int
	cand  sim.NodeID
}

// mMove implements MoveRoot: it travels along the stored "via" pointers
// toward the target, reversing the root path as it goes.
type mMove struct {
	round  int
	k      int
	target sim.NodeID
}

// mCut is the paper's <cut, k, p>: the owner virtually severs its children,
// making each the root of a fragment.
type mCut struct {
	round int
	k     int
	owner sim.NodeID
}

// mBFS is the paper's <BFS, k, p, p'> fragment wave.
type mBFS struct {
	round    int
	k        int
	owner    sim.NodeID
	fragRoot sim.NodeID
}

// mCousin answers a BFS probe across a non-tree edge: the replier's tree
// degree and fragment identity, from which the probing side records an
// outgoing edge (the paper's "cousin" answer).
type mCousin struct {
	round    int
	deg      int
	owner    sim.NodeID
	fragRoot sim.NodeID
}

// mBFSBack is the aggregate convergecast up a fragment: the best outgoing
// edge found in the sender's subtree (the paper's "BFSBack" with the
// parenthesised edge slot) plus the multi-root improvement flag.
type mBFSBack struct {
	round     int
	hasReport bool
	report    edgeReport
	improved  bool
}

// mUpdate travels from the owner down the via chain to the chosen outgoing
// edge, reversing the path (the paper's "update" message).
type mUpdate struct {
	round int
	u, v  sim.NodeID
	first bool // true on the hop leaving the owner (the cut edge)
}

// mChild is the paper's "child" message: the reattachment handshake.
type mChild struct {
	round int
}

// mRoundDone notifies the waiting owner that its exchange completed ("a
// round is terminated when a node received a child message"); the paper
// does not say how the root learns this, so we convergecast it (deviation
// documented in DESIGN.md).
type mRoundDone struct {
	round int
}

// mTerm is the final broadcast: the tree is locally optimal (or a chain);
// every node learns termination by process.
type mTerm struct {
	round int
}

func (m mStart) Kind() string      { return "mdst.start" }
func (m mStart) Words() int        { return 4 }
func (m mStart) MsgRound() int     { return m.round }
func (m mDeg) Kind() string        { return "mdst.deg" }
func (m mDeg) Words() int          { return 4 }
func (m mDeg) MsgRound() int       { return m.round }
func (m mMove) Kind() string       { return "mdst.move" }
func (m mMove) Words() int         { return 4 }
func (m mMove) MsgRound() int      { return m.round }
func (m mCut) Kind() string        { return "mdst.cut" }
func (m mCut) Words() int          { return 4 }
func (m mCut) MsgRound() int       { return m.round }
func (m mBFS) Kind() string        { return "mdst.bfs" }
func (m mBFS) Words() int          { return 5 }
func (m mBFS) MsgRound() int       { return m.round }
func (m mCousin) Kind() string     { return "mdst.cousin" }
func (m mCousin) Words() int       { return 5 }
func (m mCousin) MsgRound() int    { return m.round }
func (m mBFSBack) Kind() string    { return "mdst.bfsback" }
func (m mBFSBack) MsgRound() int   { return m.round }
func (m mUpdate) Kind() string     { return "mdst.update" }
func (m mUpdate) Words() int       { return 5 }
func (m mUpdate) MsgRound() int    { return m.round }
func (m mChild) Kind() string      { return "mdst.child" }
func (m mChild) Words() int        { return 2 }
func (m mChild) MsgRound() int     { return m.round }
func (m mRoundDone) Kind() string  { return "mdst.rounddone" }
func (m mRoundDone) Words() int    { return 2 }
func (m mRoundDone) MsgRound() int { return m.round }
func (m mTerm) Kind() string       { return "mdst.term" }
func (m mTerm) Words() int         { return 2 }
func (m mTerm) MsgRound() int      { return m.round }

func (m mBFSBack) Words() int {
	if m.hasReport {
		return 9
	}
	return 3
}

// Per-kind message pools and constructors. Handlers hand processed messages
// back through recycleMsg; constructors hand out a zeroed-and-refilled
// instance.
var (
	poolStart     = sync.Pool{New: func() any { return new(mStart) }}
	poolDeg       = sync.Pool{New: func() any { return new(mDeg) }}
	poolMove      = sync.Pool{New: func() any { return new(mMove) }}
	poolCut       = sync.Pool{New: func() any { return new(mCut) }}
	poolBFS       = sync.Pool{New: func() any { return new(mBFS) }}
	poolCousin    = sync.Pool{New: func() any { return new(mCousin) }}
	poolBFSBack   = sync.Pool{New: func() any { return new(mBFSBack) }}
	poolUpdate    = sync.Pool{New: func() any { return new(mUpdate) }}
	poolChild     = sync.Pool{New: func() any { return new(mChild) }}
	poolRoundDone = sync.Pool{New: func() any { return new(mRoundDone) }}
	poolTerm      = sync.Pool{New: func() any { return new(mTerm) }}
)

func newStart(round int, clear bool, phase Mode) *mStart {
	m := poolStart.Get().(*mStart)
	*m = mStart{round: round, clear: clear, phase: phase}
	return m
}

func newDeg(round, k int, cand sim.NodeID) *mDeg {
	m := poolDeg.Get().(*mDeg)
	*m = mDeg{round: round, k: k, cand: cand}
	return m
}

func newMove(round, k int, target sim.NodeID) *mMove {
	m := poolMove.Get().(*mMove)
	*m = mMove{round: round, k: k, target: target}
	return m
}

func newCut(round, k int, owner sim.NodeID) *mCut {
	m := poolCut.Get().(*mCut)
	*m = mCut{round: round, k: k, owner: owner}
	return m
}

func newBFS(round, k int, owner, fragRoot sim.NodeID) *mBFS {
	m := poolBFS.Get().(*mBFS)
	*m = mBFS{round: round, k: k, owner: owner, fragRoot: fragRoot}
	return m
}

func newCousin(round, deg int, owner, fragRoot sim.NodeID) *mCousin {
	m := poolCousin.Get().(*mCousin)
	*m = mCousin{round: round, deg: deg, owner: owner, fragRoot: fragRoot}
	return m
}

func newBFSBack(round int, hasReport bool, report edgeReport, improved bool) *mBFSBack {
	m := poolBFSBack.Get().(*mBFSBack)
	*m = mBFSBack{round: round, hasReport: hasReport, report: report, improved: improved}
	return m
}

func newUpdate(round int, u, v sim.NodeID, first bool) *mUpdate {
	m := poolUpdate.Get().(*mUpdate)
	*m = mUpdate{round: round, u: u, v: v, first: first}
	return m
}

func newChild(round int) *mChild {
	m := poolChild.Get().(*mChild)
	*m = mChild{round: round}
	return m
}

func newRoundDone(round int) *mRoundDone {
	m := poolRoundDone.Get().(*mRoundDone)
	*m = mRoundDone{round: round}
	return m
}

func newTerm(round int) *mTerm {
	m := poolTerm.Get().(*mTerm)
	*m = mTerm{round: round}
	return m
}

// recycleMsg returns a processed message to its pool. Only messages created
// by the constructors above reach Node handlers, so the type switch is
// total; anything else (a test injecting a value message) is left to the GC.
func recycleMsg(m sim.Message) {
	switch v := m.(type) {
	case *mStart:
		poolStart.Put(v)
	case *mDeg:
		poolDeg.Put(v)
	case *mMove:
		poolMove.Put(v)
	case *mCut:
		poolCut.Put(v)
	case *mBFS:
		poolBFS.Put(v)
	case *mCousin:
		poolCousin.Put(v)
	case *mBFSBack:
		poolBFSBack.Put(v)
	case *mUpdate:
		poolUpdate.Put(v)
	case *mChild:
		poolChild.Put(v)
	case *mRoundDone:
		poolRoundDone.Put(v)
	case *mTerm:
		poolTerm.Put(v)
	}
}

// edgeReport describes a recorded outgoing edge: u is the endpoint on the
// recording (smaller fragment identity) side, v the far endpoint, du/dv
// their tree degrees at recording time, vroot the far fragment's root (the
// owner is implied: reports never cross owners).
type edgeReport struct {
	u, v   sim.NodeID
	du, dv int
	vroot  sim.NodeID
}

// key is the total order used everywhere an edge is chosen: primarily the
// paper's rule "the outgoing edge whose maximal degree of its extremities is
// minimal", with identity tie-breaks so that every aggregation is
// deterministic and delivery-order independent.
func (r edgeReport) key() [4]int64 {
	maxd, mind := r.du, r.dv
	if mind > maxd {
		maxd, mind = mind, maxd
	}
	minID, maxID := r.u, r.v
	if minID > maxID {
		minID, maxID = maxID, minID
	}
	return [4]int64{int64(maxd), int64(mind), int64(minID), int64(maxID)}
}

// better reports whether r precedes o in the choosing order.
func (r edgeReport) better(o edgeReport) bool {
	a, b := r.key(), o.key()
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// fragID orders fragment identities (owner-major), the paper's
// "(r,r') < (p,p')" comparison.
type fragID struct {
	owner, root sim.NodeID
}

func (f fragID) less(o fragID) bool {
	if f.owner != o.owner {
		return f.owner < o.owner
	}
	return f.root < o.root
}
