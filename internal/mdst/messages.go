package mdst

import "mdegst/internal/sim"

// Message vocabulary of the improvement protocol, registered as the wire
// schema "mdst" (DESIGN.md §8). Every message carries its round number as
// payload word 0 so the engines can attribute counts per round and the
// nodes can defer messages that arrive ahead of their local round (needed
// only under non-FIFO delivery; under the paper's FIFO channels the round
// tags act as assertions).
//
// Messages travel as flat sim.WireMsg records — an opcode plus the
// identities/integers carried — and the word counts of the paper's "at
// most four numbers or identities by message" bit-complexity accounting
// are derived from the records themselves (opcode/kind tag + payload
// words; our BFSBack aggregate is larger, see DESIGN.md deviation notes
// and experiment E6). The typed structs below are a decode layer only:
// each handler decodes its record at entry so the protocol logic reads as
// before, and the constructors encode at the send boundary. No message
// ever exists as a heap object: the former pooled-pointer scheme (and the
// interface boxing before it) is gone entirely.

// wire is the registered schema; opcode order is the declaration order.
var wire = sim.Register("mdst",
	sim.OpSpec{Kind: "mdst.start", MinPayload: 3, MaxPayload: 3, Rounded: true},
	sim.OpSpec{Kind: "mdst.deg", MinPayload: 3, MaxPayload: 3, Rounded: true},
	sim.OpSpec{Kind: "mdst.move", MinPayload: 3, MaxPayload: 3, Rounded: true},
	sim.OpSpec{Kind: "mdst.cut", MinPayload: 3, MaxPayload: 3, Rounded: true},
	sim.OpSpec{Kind: "mdst.bfs", MinPayload: 4, MaxPayload: 4, Rounded: true},
	sim.OpSpec{Kind: "mdst.cousin", MinPayload: 4, MaxPayload: 4, Rounded: true},
	sim.OpSpec{Kind: "mdst.bfsback", MinPayload: 2, MaxPayload: 8, Rounded: true},
	sim.OpSpec{Kind: "mdst.update", MinPayload: 4, MaxPayload: 4, Rounded: true},
	sim.OpSpec{Kind: "mdst.child", MinPayload: 1, MaxPayload: 1, Rounded: true},
	sim.OpSpec{Kind: "mdst.rounddone", MinPayload: 1, MaxPayload: 1, Rounded: true},
	sim.OpSpec{Kind: "mdst.term", MinPayload: 1, MaxPayload: 1, Rounded: true},
)

var (
	opStart     = wire.Op(0)
	opDeg       = wire.Op(1)
	opMove      = wire.Op(2)
	opCut       = wire.Op(3)
	opBFS       = wire.Op(4)
	opCousin    = wire.Op(5)
	opBFSBack   = wire.Op(6)
	opUpdate    = wire.Op(7)
	opChild     = wire.Op(8)
	opRoundDone = wire.Op(9)
	opTerm      = wire.Op(10)
)

// noCand marks the absence of an improvement candidate in the SearchDegree
// convergecast (all maximum-degree nodes exhausted).
const noCand sim.NodeID = -1

// mStart begins a round: broadcast from the acting root down the tree.
// clear resets the "exhausted" flags after a successful exchange; phase is
// the round's mode (Single or Multi — Hybrid runs switch mid-algorithm).
type mStart struct {
	round int
	clear bool
	phase Mode
}

func newStart(round int, clear bool, phase Mode) sim.WireMsg {
	return sim.Msg(opStart, int64(round), sim.B2W(clear), int64(phase))
}

func decStart(m sim.WireMsg) mStart {
	return mStart{round: int(m.W[0]), clear: m.W[1] != 0, phase: Mode(m.W[2])}
}

// mDeg is the SearchDegree convergecast: the maximum tree degree in the
// sender's subtree and the minimum identity of an eligible node attaining
// it (noCand if none).
type mDeg struct {
	round int
	k     int
	cand  sim.NodeID
}

func newDeg(round, k int, cand sim.NodeID) sim.WireMsg {
	return sim.Msg(opDeg, int64(round), int64(k), int64(cand))
}

func decDeg(m sim.WireMsg) mDeg {
	return mDeg{round: int(m.W[0]), k: int(m.W[1]), cand: sim.NodeID(m.W[2])}
}

// mMove implements MoveRoot: it travels along the stored "via" pointers
// toward the target, reversing the root path as it goes.
type mMove struct {
	round  int
	k      int
	target sim.NodeID
}

func newMove(round, k int, target sim.NodeID) sim.WireMsg {
	return sim.Msg(opMove, int64(round), int64(k), int64(target))
}

func decMove(m sim.WireMsg) mMove {
	return mMove{round: int(m.W[0]), k: int(m.W[1]), target: sim.NodeID(m.W[2])}
}

// mCut is the paper's <cut, k, p>: the owner virtually severs its children,
// making each the root of a fragment.
type mCut struct {
	round int
	k     int
	owner sim.NodeID
}

func newCut(round, k int, owner sim.NodeID) sim.WireMsg {
	return sim.Msg(opCut, int64(round), int64(k), int64(owner))
}

func decCut(m sim.WireMsg) mCut {
	return mCut{round: int(m.W[0]), k: int(m.W[1]), owner: sim.NodeID(m.W[2])}
}

// mBFS is the paper's <BFS, k, p, p'> fragment wave.
type mBFS struct {
	round    int
	k        int
	owner    sim.NodeID
	fragRoot sim.NodeID
}

func newBFS(round, k int, owner, fragRoot sim.NodeID) sim.WireMsg {
	return sim.Msg(opBFS, int64(round), int64(k), int64(owner), int64(fragRoot))
}

func decBFS(m sim.WireMsg) mBFS {
	return mBFS{round: int(m.W[0]), k: int(m.W[1]), owner: sim.NodeID(m.W[2]), fragRoot: sim.NodeID(m.W[3])}
}

// mCousin answers a BFS probe across a non-tree edge: the replier's tree
// degree and fragment identity, from which the probing side records an
// outgoing edge (the paper's "cousin" answer).
type mCousin struct {
	round    int
	deg      int
	owner    sim.NodeID
	fragRoot sim.NodeID
}

func newCousin(round, deg int, owner, fragRoot sim.NodeID) sim.WireMsg {
	return sim.Msg(opCousin, int64(round), int64(deg), int64(owner), int64(fragRoot))
}

func decCousin(m sim.WireMsg) mCousin {
	return mCousin{round: int(m.W[0]), deg: int(m.W[1]), owner: sim.NodeID(m.W[2]), fragRoot: sim.NodeID(m.W[3])}
}

// mBFSBack is the aggregate convergecast up a fragment: the best outgoing
// edge found in the sender's subtree (the paper's "BFSBack" with the
// parenthesised edge slot) plus the multi-root improvement flag. It is the
// schema's one variable-size record: the short form (no edge to report)
// carries round and the improvement flag; the long form adds the explicit
// report flag and the five edge-report words, preserving the historical
// 3-vs-9-word accounting.
type mBFSBack struct {
	round     int
	hasReport bool
	report    edgeReport
	improved  bool
}

func newBFSBack(round int, hasReport bool, report edgeReport, improved bool) sim.WireMsg {
	m := sim.WireMsg{Op: opBFSBack}
	m.W[0] = int64(round)
	if !hasReport {
		m.Nw = 2
		m.W[1] = sim.B2W(improved)
		return m
	}
	m.Nw = 8
	m.W[1] = 1
	m.W[2] = sim.B2W(improved)
	m.W[3], m.W[4] = int64(report.u), int64(report.v)
	m.W[5], m.W[6] = int64(report.du), int64(report.dv)
	m.W[7] = int64(report.vroot)
	return m
}

func decBFSBack(m sim.WireMsg) mBFSBack {
	if m.Nw == 2 {
		return mBFSBack{round: int(m.W[0]), improved: m.W[1] != 0}
	}
	return mBFSBack{
		round:     int(m.W[0]),
		hasReport: m.W[1] != 0,
		improved:  m.W[2] != 0,
		report: edgeReport{
			u: sim.NodeID(m.W[3]), v: sim.NodeID(m.W[4]),
			du: int(m.W[5]), dv: int(m.W[6]),
			vroot: sim.NodeID(m.W[7]),
		},
	}
}

// mUpdate travels from the owner down the via chain to the chosen outgoing
// edge, reversing the path (the paper's "update" message).
type mUpdate struct {
	round int
	u, v  sim.NodeID
	first bool // true on the hop leaving the owner (the cut edge)
}

func newUpdate(round int, u, v sim.NodeID, first bool) sim.WireMsg {
	return sim.Msg(opUpdate, int64(round), int64(u), int64(v), sim.B2W(first))
}

func decUpdate(m sim.WireMsg) mUpdate {
	return mUpdate{round: int(m.W[0]), u: sim.NodeID(m.W[1]), v: sim.NodeID(m.W[2]), first: m.W[3] != 0}
}

// mChild is the paper's "child" message: the reattachment handshake.
type mChild struct {
	round int
}

func newChild(round int) sim.WireMsg { return sim.Msg(opChild, int64(round)) }

// mRoundDone notifies the waiting owner that its exchange completed ("a
// round is terminated when a node received a child message"); the paper
// does not say how the root learns this, so we convergecast it (deviation
// documented in DESIGN.md).
type mRoundDone struct {
	round int
}

func newRoundDone(round int) sim.WireMsg { return sim.Msg(opRoundDone, int64(round)) }

// mTerm is the final broadcast: the tree is locally optimal (or a chain);
// every node learns termination by process.
type mTerm struct {
	round int
}

func newTerm(round int) sim.WireMsg { return sim.Msg(opTerm, int64(round)) }

// edgeReport describes a recorded outgoing edge: u is the endpoint on the
// recording (smaller fragment identity) side, v the far endpoint, du/dv
// their tree degrees at recording time, vroot the far fragment's root (the
// owner is implied: reports never cross owners).
type edgeReport struct {
	u, v   sim.NodeID
	du, dv int
	vroot  sim.NodeID
}

// key is the total order used everywhere an edge is chosen: primarily the
// paper's rule "the outgoing edge whose maximal degree of its extremities is
// minimal", with identity tie-breaks so that every aggregation is
// deterministic and delivery-order independent.
func (r edgeReport) key() [4]int64 {
	maxd, mind := r.du, r.dv
	if mind > maxd {
		maxd, mind = mind, maxd
	}
	minID, maxID := r.u, r.v
	if minID > maxID {
		minID, maxID = maxID, minID
	}
	return [4]int64{int64(maxd), int64(mind), int64(minID), int64(maxID)}
}

// better reports whether r precedes o in the choosing order.
func (r edgeReport) better(o edgeReport) bool {
	a, b := r.key(), o.key()
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// fragID orders fragment identities (owner-major), the paper's
// "(r,r') < (p,p')" comparison.
type fragID struct {
	owner, root sim.NodeID
}

func (f fragID) less(o fragID) bool {
	if f.owner != o.owner {
		return f.owner < o.owner
	}
	return f.root < o.root
}
